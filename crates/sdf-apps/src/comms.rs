//! Communication-system benchmarks: the 16-QAM modem and the 4-PAM
//! transmitter/receiver pair (§10.1).
//!
//! The original Ptolemy demo netlists are not published; these are
//! reconstructions with the canonical structure of such systems — bit
//! scrambling, symbol mapping (4 or 2 bits per symbol), pulse-shaping
//! interpolation, a channel, matched filtering with decimation, slicing and
//! descrambling — chosen so the multirate pattern (small symbol rates
//! against a 16× or 8× sample rate) matches what the paper's numbers imply.

use sdf_core::graph::SdfGraph;

/// Builds the 16-QAM modem loopback (transmitter into receiver).
///
/// # Examples
///
/// ```
/// use sdf_apps::comms::modem_16qam;
/// use sdf_core::RepetitionsVector;
///
/// let g = modem_16qam();
/// assert!(RepetitionsVector::compute(&g).is_ok());
/// ```
pub fn modem_16qam() -> SdfGraph {
    let mut g = SdfGraph::new("16qamModem");
    let bits = g.add_actor("bitSrc");
    let scram = g.add_actor("scrambler");
    let map = g.add_actor("qamMapper"); // 4 bits -> 1 symbol
    let interp = g.add_actor("pulseShaper"); // 1 symbol -> 16 samples
    let txf = g.add_actor("txFilter");
    let chan = g.add_actor("channel");
    let agc = g.add_actor("agc");
    let matched = g.add_actor("matchedFilter");
    let decim = g.add_actor("symbolSync"); // 16 samples -> 1 symbol
    let eq = g.add_actor("equalizer");
    let slicer = g.add_actor("slicer");
    let demap = g.add_actor("qamDemapper"); // 1 symbol -> 4 bits
    let descram = g.add_actor("descrambler");
    let sink = g.add_actor("bitSink");
    let chain = [
        (bits, scram, 1, 1),
        (scram, map, 1, 4),
        (map, interp, 1, 1),
        (interp, txf, 16, 1),
        (txf, chan, 1, 1),
        (chan, agc, 1, 1),
        (agc, matched, 1, 1),
        (matched, decim, 1, 16),
        (decim, eq, 1, 1),
        (eq, slicer, 1, 1),
        (slicer, demap, 1, 1),
        (demap, descram, 4, 1),
        (descram, sink, 1, 1),
    ];
    for (s, t, p, c) in chain {
        g.add_edge(s, t, p, c).expect("valid rates");
    }
    g
}

/// Builds the 4-PAM transmitter/receiver pair with 8× interpolation.
pub fn pam4_xmitrec() -> SdfGraph {
    let mut g = SdfGraph::new("4pamxmitrec");
    let bits = g.add_actor("bitSrc");
    let map = g.add_actor("pamMapper"); // 2 bits -> 1 level
    let up = g.add_actor("interp8"); // 1 -> 8
    let shape = g.add_actor("shaper");
    let dac = g.add_actor("dac");
    let chan = g.add_actor("channel");
    let adc = g.add_actor("adc");
    let lpf = g.add_actor("rxFilter");
    let down = g.add_actor("decim8"); // 8 -> 1
    let detect = g.add_actor("detector");
    let demap = g.add_actor("pamDemapper"); // 1 -> 2 bits
    let sink = g.add_actor("bitSink");
    let chain = [
        (bits, map, 1, 2),
        (map, up, 1, 1),
        (up, shape, 8, 1),
        (shape, dac, 1, 1),
        (dac, chan, 1, 1),
        (chan, adc, 1, 1),
        (adc, lpf, 1, 1),
        (lpf, down, 1, 8),
        (down, detect, 1, 1),
        (detect, demap, 1, 1),
        (demap, sink, 2, 1),
    ];
    for (s, t, p, c) in chain {
        g.add_edge(s, t, p, c).expect("valid rates");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdf_core::RepetitionsVector;

    #[test]
    fn modem_consistent_and_multirate() {
        let g = modem_16qam();
        let q = RepetitionsVector::compute(&g).unwrap();
        assert!(g.is_acyclic() && g.is_connected());
        let bits = g.actor_by_name("bitSrc").unwrap();
        let samples = g.actor_by_name("channel").unwrap();
        // 4 bits/symbol, 16 samples/symbol: sample rate = 4x bit rate.
        assert_eq!(q.get(samples), 4 * q.get(bits));
    }

    #[test]
    fn modem_rate_symmetry() {
        // Receiver symbol rate equals transmitter symbol rate.
        let g = modem_16qam();
        let q = RepetitionsVector::compute(&g).unwrap();
        let map = g.actor_by_name("qamMapper").unwrap();
        let eq = g.actor_by_name("equalizer").unwrap();
        assert_eq!(q.get(map), q.get(eq));
    }

    #[test]
    fn pam_consistent() {
        let g = pam4_xmitrec();
        let q = RepetitionsVector::compute(&g).unwrap();
        assert!(g.is_acyclic() && g.is_connected());
        let bits = g.actor_by_name("bitSrc").unwrap();
        let chan = g.actor_by_name("channel").unwrap();
        // 2 bits/level, 8 samples/level: sample rate = 4x bit rate.
        assert_eq!(q.get(chan), 4 * q.get(bits));
    }

    #[test]
    fn chains_are_chain_structured() {
        assert!(modem_16qam().is_chain());
        assert!(pam4_xmitrec().is_chain());
    }
}
