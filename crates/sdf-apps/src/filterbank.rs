//! Parametric QMF filterbank generators (the paper's Figs. 22–23).
//!
//! A depth-`d` **two-sided** filterbank recursively splits the signal into a
//! low and a high band, processes both at depth `d − 1`, and resynthesises:
//!
//! ```text
//! fb(0) = p1 → p2                      (2 actors)
//! fb(d) = alp, ahp  +  fb(d−1) low  +  fb(d−1) high  +  slp, shp
//! ```
//!
//! giving `n(d) = 2·n(d−1) + 4` actors — 20 at depth 2, 44 at depth 3 and
//! 188 at depth 5, matching the node counts reported in §10.1.  The
//! **one-sided** variant (Fig. 22) recurses only on the low band.
//!
//! Rate changes are parametrised by `(lo, hi, den)`: the analysis lowpass
//! consumes `den` and produces `lo`, the highpass consumes `den` and
//! produces `hi` (`lo + hi = den` for perfect-reconstruction banks, though
//! the generator does not require it).

use sdf_core::graph::{ActorId, SdfGraph};

/// Rate-change parameters of one filterbank level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FilterbankRates {
    /// Tokens the lowpass analysis filter produces per `den` consumed.
    pub lo: u64,
    /// Tokens the highpass analysis filter produces per `den` consumed.
    pub hi: u64,
    /// Tokens consumed per analysis firing (the decimation denominator).
    pub den: u64,
}

impl FilterbankRates {
    /// The 1/2, 1/2 rate change of the most common QMF bank.
    pub const HALVES: FilterbankRates = FilterbankRates {
        lo: 1,
        hi: 1,
        den: 2,
    };
    /// The 1/3, 2/3 rate change.
    pub const THIRDS: FilterbankRates = FilterbankRates {
        lo: 1,
        hi: 2,
        den: 3,
    };
    /// The 2/5, 3/5 rate change.
    pub const FIFTHS: FilterbankRates = FilterbankRates {
        lo: 2,
        hi: 3,
        den: 5,
    };

    /// The paper's name tag for the rate change: `12` for 1/2-1/2, `23`
    /// for 1/3-2/3, `235` for 2/5-3/5, `<lo><hi><den>` otherwise.
    pub fn tag(self) -> String {
        match (self.lo, self.hi, self.den) {
            (1, 1, 2) => "12".into(),
            (1, 2, 3) => "23".into(),
            (2, 3, 5) => "235".into(),
            (lo, hi, den) => format!("{lo}{hi}{den}"),
        }
    }
}

/// The dataflow interface of a generated (sub)filterbank.
struct Block {
    /// Input actors with their per-firing consumption from the feeding
    /// edge.
    inputs: Vec<(ActorId, u64)>,
    /// Output actor and its per-firing production.
    output: (ActorId, u64),
}

/// Builds the depth-`depth` two-sided filterbank `qmf<rates>_<depth>d`.
///
/// # Panics
///
/// Panics if rates are zero (edge construction would fail).
///
/// # Examples
///
/// ```
/// use sdf_apps::filterbank::{two_sided_filterbank, FilterbankRates};
/// use sdf_core::RepetitionsVector;
///
/// let g = two_sided_filterbank(2, FilterbankRates::THIRDS);
/// assert_eq!(g.actor_count(), 20);
/// assert!(RepetitionsVector::compute(&g).is_ok());
/// ```
pub fn two_sided_filterbank(depth: usize, rates: FilterbankRates) -> SdfGraph {
    let mut g = SdfGraph::new(format!("qmf{}_{}d", rates.tag(), depth));
    build_block(&mut g, depth, rates, "r", true);
    g
}

/// Builds the depth-`depth` one-sided filterbank `nqmf<rates>_<depth>d`
/// (only the low band recurses, Fig. 22).
///
/// # Examples
///
/// ```
/// use sdf_apps::filterbank::{one_sided_filterbank, FilterbankRates};
///
/// let g = one_sided_filterbank(4, FilterbankRates::THIRDS);
/// assert_eq!(g.actor_count(), 2 + 6 * 4); // n(d) = n(d-1) + 6
/// ```
pub fn one_sided_filterbank(depth: usize, rates: FilterbankRates) -> SdfGraph {
    let mut g = SdfGraph::new(format!("nqmf{}_{}d", rates.tag(), depth));
    build_block(&mut g, depth, rates, "r", false);
    g
}

fn build_block(
    g: &mut SdfGraph,
    depth: usize,
    rates: FilterbankRates,
    prefix: &str,
    two_sided: bool,
) -> Block {
    if depth == 0 {
        let p1 = g.add_actor(format!("{prefix}_p1"));
        let p2 = g.add_actor(format!("{prefix}_p2"));
        g.add_edge(p1, p2, 1, 1).expect("unit rates are valid");
        return Block {
            inputs: vec![(p1, 1)],
            output: (p2, 1),
        };
    }
    let FilterbankRates { lo, hi, den } = rates;
    let alp = g.add_actor(format!("{prefix}_alp"));
    let ahp = g.add_actor(format!("{prefix}_ahp"));
    let low = build_block(g, depth - 1, rates, &format!("{prefix}l"), two_sided);
    let high = if two_sided {
        build_block(g, depth - 1, rates, &format!("{prefix}h"), two_sided)
    } else {
        build_block(g, 0, rates, &format!("{prefix}h"), two_sided)
    };
    let slp = g.add_actor(format!("{prefix}_slp"));
    let shp = g.add_actor(format!("{prefix}_shp"));

    // Analysis outputs feed the sub-banks.
    for &(a, c) in &low.inputs {
        g.add_edge(alp, a, lo, c).expect("positive rates");
    }
    for &(a, c) in &high.inputs {
        g.add_edge(ahp, a, hi, c).expect("positive rates");
    }
    // Synthesis: slp upsamples the low band (lo -> den), shp combines it
    // with the high band (hi -> den) into the block output.
    let (lo_out, lo_prod) = low.output;
    let (hi_out, hi_prod) = high.output;
    g.add_edge(lo_out, slp, lo_prod, lo)
        .expect("positive rates");
    g.add_edge(slp, shp, den, den).expect("positive rates");
    g.add_edge(hi_out, shp, hi_prod, hi)
        .expect("positive rates");

    Block {
        inputs: vec![(alp, den), (ahp, den)],
        output: (shp, den),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdf_core::RepetitionsVector;

    #[test]
    fn two_sided_node_counts_match_paper() {
        // §10.1: depth 2, 3 and 5 filterbanks have 20, 44 and 188 nodes.
        for (depth, expect) in [(1, 8), (2, 20), (3, 44), (4, 92), (5, 188)] {
            let g = two_sided_filterbank(depth, FilterbankRates::HALVES);
            assert_eq!(g.actor_count(), expect, "depth {depth}");
        }
    }

    #[test]
    fn all_rate_variants_consistent() {
        for rates in [
            FilterbankRates::HALVES,
            FilterbankRates::THIRDS,
            FilterbankRates::FIFTHS,
        ] {
            for depth in 1..=3 {
                let g = two_sided_filterbank(depth, rates);
                let q = RepetitionsVector::compute(&g);
                assert!(q.is_ok(), "depth {depth} rates {rates:?}: {q:?}");
                assert!(g.is_acyclic());
                assert!(g.is_connected());
            }
        }
    }

    #[test]
    fn one_sided_consistent() {
        for depth in 1..=4 {
            let g = one_sided_filterbank(depth, FilterbankRates::THIRDS);
            assert!(RepetitionsVector::compute(&g).is_ok(), "depth {depth}");
            assert!(g.is_acyclic());
            assert!(g.is_connected());
            assert_eq!(g.actor_count(), 2 + 6 * depth);
        }
    }

    #[test]
    fn depth_zero_is_two_actor_chain() {
        let g = two_sided_filterbank(0, FilterbankRates::HALVES);
        assert_eq!(g.actor_count(), 2);
        assert!(g.is_chain());
    }

    #[test]
    fn block_behaves_as_identity_rate() {
        // q(alp) == q(shp) at the top level: the bank consumes and produces
        // at the same rate.
        let g = two_sided_filterbank(3, FilterbankRates::THIRDS);
        let q = RepetitionsVector::compute(&g).unwrap();
        let alp = g.actor_by_name("r_alp").unwrap();
        let shp = g.actor_by_name("r_shp").unwrap();
        assert_eq!(q.get(alp), q.get(shp));
    }

    #[test]
    fn names_are_unique() {
        let g = two_sided_filterbank(3, FilterbankRates::HALVES);
        let mut names: Vec<&str> = g.actors().map(|a| g.actor_name(a)).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn deep_bank_repetition_counts_grow_geometrically() {
        let g = two_sided_filterbank(3, FilterbankRates::HALVES);
        let q = RepetitionsVector::compute(&g).unwrap();
        let top = g.actor_by_name("r_alp").unwrap();
        let deep = g.actor_by_name("rlll_p1").unwrap();
        // Two halving levels separate the top analysis filter from the
        // deepest leaf (the leaf fires at its feeding filter's rate).
        assert_eq!(q.get(top), 4 * q.get(deep));
    }
}
