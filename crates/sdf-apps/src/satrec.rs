//! The satellite receiver benchmark (Fig. 24, from Ritz et al. \[24\]).
//!
//! The exact netlist of the original example is not published in the paper;
//! this reconstruction is reverse-engineered from the APGAN schedule the
//! paper prints for it,
//!
//! ```text
//! (24 (11 (4A) B) C G H I (11 (4D) E) F K L M 10(N S J T U P)) (Q R V 240W)
//! ```
//!
//! so that the repetitions vector matches exactly: two parallel input
//! chains A→B→C→G→H→I and D→E→F→K→L→M (decimating 4:1 then 11:1), merged
//! into a 240-rate section N,S,J,T,U,P, a 1-rate control section Q,R,V and
//! a 240-rate output W.

use sdf_core::graph::SdfGraph;

/// Builds the satellite receiver graph (22 actors).
///
/// # Examples
///
/// ```
/// use sdf_apps::satrec::satellite_receiver;
/// use sdf_core::RepetitionsVector;
///
/// let g = satellite_receiver();
/// let q = RepetitionsVector::compute(&g).unwrap();
/// let a = g.actor_by_name("A").unwrap();
/// assert_eq!(q.get(a), 1056);
/// ```
pub fn satellite_receiver() -> SdfGraph {
    let mut g = SdfGraph::new("satrec");
    let names = [
        "A", "B", "C", "G", "H", "I", // chain 1
        "D", "E", "F", "K", "L", "M", // chain 2
        "N", "S", "J", "T", "U", "P", // 240-rate section
        "Q", "R", "V", // control section
        "W", // output
    ];
    let id: std::collections::HashMap<&str, _> =
        names.iter().map(|&n| (n, g.add_actor(n))).collect();
    let mut edge = |s: &str, t: &str, p: u64, c: u64| {
        g.add_edge(id[s], id[t], p, c).expect("valid rates");
    };
    // Chain 1: A(1056) -> B(264) -> C(24) -> G -> H -> I.
    edge("A", "B", 1, 4);
    edge("B", "C", 1, 11);
    edge("C", "G", 1, 1);
    edge("G", "H", 1, 1);
    edge("H", "I", 1, 1);
    // Chain 2: D(1056) -> E(264) -> F(24) -> K -> L -> M.
    edge("D", "E", 1, 4);
    edge("E", "F", 1, 11);
    edge("F", "K", 1, 1);
    edge("K", "L", 1, 1);
    edge("L", "M", 1, 1);
    // Merge into the 240-rate section.
    edge("I", "N", 10, 1);
    edge("M", "S", 10, 1);
    edge("N", "S", 1, 1);
    edge("S", "J", 1, 1);
    edge("J", "T", 1, 1);
    edge("T", "U", 1, 1);
    edge("U", "P", 1, 1);
    // Control section at rate 1.
    edge("P", "Q", 1, 240);
    edge("Q", "R", 1, 1);
    edge("R", "V", 1, 1);
    // Output at rate 240.
    edge("V", "W", 240, 1);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdf_core::RepetitionsVector;

    #[test]
    fn repetitions_match_published_schedule() {
        let g = satellite_receiver();
        let q = RepetitionsVector::compute(&g).unwrap();
        let expect = [
            ("A", 1056),
            ("B", 264),
            ("C", 24),
            ("G", 24),
            ("H", 24),
            ("I", 24),
            ("D", 1056),
            ("E", 264),
            ("F", 24),
            ("K", 24),
            ("L", 24),
            ("M", 24),
            ("N", 240),
            ("S", 240),
            ("J", 240),
            ("T", 240),
            ("U", 240),
            ("P", 240),
            ("Q", 1),
            ("R", 1),
            ("V", 1),
            ("W", 240),
        ];
        for (name, reps) in expect {
            let a = g.actor_by_name(name).unwrap();
            assert_eq!(q.get(a), reps, "actor {name}");
        }
    }

    #[test]
    fn structure() {
        let g = satellite_receiver();
        assert_eq!(g.actor_count(), 22);
        assert!(g.is_acyclic());
        assert!(g.is_connected());
    }

    #[test]
    fn nonshared_flat_reference_magnitude() {
        // The paper reports ~1542 for the non-shared nested SAS; our
        // reconstruction's BMLB should be the same order of magnitude.
        let g = satellite_receiver();
        let bmlb = sdf_core::bounds::bmlb(&g);
        assert!(bmlb > 500, "bmlb = {bmlb}");
        assert!(bmlb < 5000, "bmlb = {bmlb}");
    }
}
