//! The homogeneous M×N graph family of §10.2 (Fig. 26).
//!
//! A source fans out to `M` parallel chains of `N` actors each, all merging
//! into one sink; every rate is 1.  No matter the schedule there are never
//! more than `M + 1` live tokens, so the shared allocation should reach
//! `M + 1` while a non-shared implementation needs one location per edge:
//! `M(N − 1) + 2M = M(N + 1)`.

use sdf_core::graph::SdfGraph;

/// Builds the Fig. 26 graph with `m` chains of `n` actors.
///
/// # Panics
///
/// Panics if `m == 0` or `n == 0`.
///
/// # Examples
///
/// ```
/// use sdf_apps::homogeneous::homogeneous_grid;
///
/// let g = homogeneous_grid(3, 4);
/// assert_eq!(g.actor_count(), 2 + 3 * 4);
/// assert_eq!(g.edge_count(), 3 * (4 + 1));
/// assert!(g.is_homogeneous());
/// ```
pub fn homogeneous_grid(m: usize, n: usize) -> SdfGraph {
    assert!(m > 0 && n > 0, "grid dimensions must be positive");
    let mut g = SdfGraph::new(format!("homog_{m}x{n}"));
    let src = g.add_actor("src");
    let snk = g.add_actor("snk");
    for row in 0..m {
        let mut prev = src;
        for col in 0..n {
            let a = g.add_actor(format!("x{row}_{col}"));
            g.add_edge(prev, a, 1, 1).expect("unit rates");
            prev = a;
        }
        g.add_edge(prev, snk, 1, 1).expect("unit rates");
    }
    g
}

/// The non-shared memory a per-edge implementation needs: `M(N + 1)` (the
/// paper writes it as `M(N − 1) + 2M`).
pub fn nonshared_requirement(m: u64, n: u64) -> u64 {
    m * (n + 1)
}

/// The shared-model optimum the paper reports: `M + 1` live tokens.
pub fn shared_optimum(m: u64) -> u64 {
    m + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdf_core::RepetitionsVector;

    #[test]
    fn structure_and_counts() {
        for (m, n) in [(1, 1), (2, 3), (5, 4), (8, 10)] {
            let g = homogeneous_grid(m, n);
            assert_eq!(g.actor_count(), 2 + m * n);
            assert_eq!(g.edge_count(), m * (n + 1));
            assert_eq!(
                nonshared_requirement(m as u64, n as u64),
                g.edge_count() as u64
            );
            assert!(g.is_acyclic());
            assert!(g.is_connected());
            assert!(g.is_homogeneous());
        }
    }

    #[test]
    fn all_repetitions_one() {
        let g = homogeneous_grid(4, 6);
        let q = RepetitionsVector::compute(&g).unwrap();
        assert!(q.as_slice().iter().all(|&x| x == 1));
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_panics() {
        let _ = homogeneous_grid(0, 3);
    }
}
