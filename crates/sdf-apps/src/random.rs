//! Random consistent SDF graph generation (§10.3's experimental workload).
//!
//! The generator is consistent-by-construction: each actor is first given a
//! repetition count built from small prime factors, then edges are rated
//! `prod = q(snk)/g · f`, `cons = q(src)/g · f` with `g = gcd(q(src),
//! q(snk))`, which satisfies the balance equation by algebra.  A random
//! spanning arborescence keeps the graph connected; all edges point from
//! lower to higher index, so the result is acyclic.

use rand::Rng;
use sdf_core::graph::SdfGraph;

/// Tunable parameters for the random graph generator.
#[derive(Clone, Copy, Debug)]
pub struct RandomGraphConfig {
    /// Number of actors.
    pub actors: usize,
    /// Target number of edges (at least `actors − 1` is used to keep the
    /// graph connected).
    pub edges: usize,
    /// Largest extra rate multiplier `f` applied to an edge (≥ 1).
    pub max_rate_multiplier: u64,
    /// Probability that an edge carries initial tokens.
    pub delay_probability: f64,
}

impl RandomGraphConfig {
    /// The paper-style configuration: sparse (≈ 1.5 edges per actor),
    /// delayless, modest rates.
    pub fn paper_style(actors: usize) -> Self {
        RandomGraphConfig {
            actors,
            edges: actors + actors / 2,
            max_rate_multiplier: 2,
            delay_probability: 0.0,
        }
    }
}

/// Generates a random connected, acyclic, consistent SDF graph.
///
/// # Panics
///
/// Panics if `config.actors == 0`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use sdf_apps::random::{random_sdf_graph, RandomGraphConfig};
/// use sdf_core::RepetitionsVector;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let g = random_sdf_graph(&RandomGraphConfig::paper_style(20), &mut rng);
/// assert_eq!(g.actor_count(), 20);
/// assert!(RepetitionsVector::compute(&g).is_ok());
/// assert!(g.is_acyclic());
/// assert!(g.is_connected());
/// ```
pub fn random_sdf_graph<R: Rng + ?Sized>(config: &RandomGraphConfig, rng: &mut R) -> SdfGraph {
    assert!(config.actors > 0, "graph must have at least one actor");
    let n = config.actors;
    let mut g = SdfGraph::new(format!("random_{n}"));
    let ids: Vec<_> = (0..n).map(|i| g.add_actor(format!("n{i}"))).collect();

    // Repetition counts with interesting shared factors.
    let primes = [2u64, 2, 2, 3, 3, 5];
    let q: Vec<u64> = (0..n)
        .map(|_| {
            let factors = rng.gen_range(0..=3);
            (0..factors)
                .map(|_| primes[rng.gen_range(0..primes.len())])
                .product::<u64>()
                .max(1)
        })
        .collect();

    let add = |g: &mut SdfGraph, rng: &mut R, i: usize, j: usize| {
        debug_assert!(i < j);
        let gij = sdf_core::math::gcd(q[i], q[j]);
        let f = rng.gen_range(1..=config.max_rate_multiplier.max(1));
        let prod = q[j] / gij * f;
        let cons = q[i] / gij * f;
        let delay = if rng.gen_bool(config.delay_probability) {
            cons * rng.gen_range(1..=2)
        } else {
            0
        };
        g.add_edge_with_delay(ids[i], ids[j], prod, cons, delay)
            .expect("construction keeps rates positive");
    };

    // Spanning structure: every actor after the first attaches to an
    // earlier one.
    for j in 1..n {
        let i = rng.gen_range(0..j);
        add(&mut g, rng, i, j);
    }
    // Extra forward edges up to the target count.
    let extra = config.edges.saturating_sub(n - 1);
    for _ in 0..extra {
        if n < 2 {
            break;
        }
        let i = rng.gen_range(0..n - 1);
        let j = rng.gen_range(i + 1..n);
        add(&mut g, rng, i, j);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sdf_core::RepetitionsVector;

    #[test]
    fn always_consistent_connected_acyclic() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for size in [1, 2, 5, 20, 50] {
            for _ in 0..20 {
                let g = random_sdf_graph(&RandomGraphConfig::paper_style(size), &mut rng);
                assert!(RepetitionsVector::compute(&g).is_ok(), "{}", g.name());
                assert!(g.is_acyclic());
                assert!(g.is_connected());
            }
        }
    }

    #[test]
    fn respects_edge_target() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let cfg = RandomGraphConfig {
            actors: 30,
            edges: 45,
            max_rate_multiplier: 3,
            delay_probability: 0.0,
        };
        let g = random_sdf_graph(&cfg, &mut rng);
        assert_eq!(g.edge_count(), 45);
    }

    #[test]
    fn delays_appear_when_requested() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let cfg = RandomGraphConfig {
            actors: 40,
            edges: 60,
            max_rate_multiplier: 2,
            delay_probability: 0.5,
        };
        let g = random_sdf_graph(&cfg, &mut rng);
        assert!(g.total_delay() > 0);
        assert!(RepetitionsVector::compute(&g).is_ok());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = RandomGraphConfig::paper_style(15);
        let g1 = random_sdf_graph(&cfg, &mut rand::rngs::StdRng::seed_from_u64(42));
        let g2 = random_sdf_graph(&cfg, &mut rand::rngs::StdRng::seed_from_u64(42));
        assert_eq!(g1.edge_count(), g2.edge_count());
        let e1: Vec<_> = g1.edges().map(|(_, e)| *e).collect();
        let e2: Vec<_> = g2.edges().map(|(_, e)| *e).collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn repetition_vector_magnitudes_are_moderate() {
        // Guard against rate blowups that would make the experiments slow.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let g = random_sdf_graph(&RandomGraphConfig::paper_style(100), &mut rng);
        let q = RepetitionsVector::compute(&g).unwrap();
        assert!(q.total_firings() < 2_000_000, "{}", q.total_firings());
    }
}
