//! The named benchmark registry: every practical system of Table 1.

use sdf_core::graph::SdfGraph;

use crate::comms::{modem_16qam, pam4_xmitrec};
use crate::dsp::{block_vocoder, cd_to_dat, overlap_add_fft, phased_array};
use crate::filterbank::{one_sided_filterbank, two_sided_filterbank, FilterbankRates};
use crate::satrec::satellite_receiver;

/// Builds every practical benchmark of the paper's Table 1, in the table's
/// row order, as `(name, graph)` pairs.
///
/// # Examples
///
/// ```
/// use sdf_apps::registry::table1_systems;
///
/// let systems = table1_systems();
/// assert!(systems.iter().any(|g| g.name() == "satrec"));
/// ```
pub fn table1_systems() -> Vec<SdfGraph> {
    vec![
        one_sided_filterbank(4, FilterbankRates::THIRDS), // nqmf23_4d
        two_sided_filterbank(2, FilterbankRates::THIRDS), // qmf23_2d
        two_sided_filterbank(3, FilterbankRates::THIRDS), // qmf23_3d
        two_sided_filterbank(2, FilterbankRates::HALVES), // qmf12_2d
        two_sided_filterbank(3, FilterbankRates::HALVES), // qmf12_3d
        two_sided_filterbank(5, FilterbankRates::HALVES), // qmf12_5d
        two_sided_filterbank(2, FilterbankRates::FIFTHS), // qmf235_2d
        two_sided_filterbank(3, FilterbankRates::FIFTHS), // qmf235_3d
        two_sided_filterbank(5, FilterbankRates::FIFTHS), // qmf235_5d
        satellite_receiver(),
        modem_16qam(),
        pam4_xmitrec(),
        block_vocoder(),
        overlap_add_fft(),
        phased_array(),
    ]
}

/// Looks up one benchmark by its Table 1 name (e.g. `"qmf23_2d"`).
pub fn by_name(name: &str) -> Option<SdfGraph> {
    table1_systems().into_iter().find(|g| g.name() == name)
}

/// The CD-to-DAT chain used by the §11.1.3 bounds discussion (not part of
/// Table 1).
pub fn cd_dat() -> SdfGraph {
    cd_to_dat()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdf_core::RepetitionsVector;

    #[test]
    fn all_systems_build_and_are_consistent() {
        let systems = table1_systems();
        assert_eq!(systems.len(), 15);
        for g in &systems {
            assert!(
                RepetitionsVector::compute(g).is_ok(),
                "inconsistent: {}",
                g.name()
            );
            assert!(g.is_acyclic(), "cyclic: {}", g.name());
            assert!(g.is_connected(), "disconnected: {}", g.name());
        }
    }

    #[test]
    fn names_match_paper_rows() {
        let names: Vec<String> = table1_systems()
            .iter()
            .map(|g| g.name().to_string())
            .collect();
        let expect = [
            "nqmf23_4d",
            "qmf23_2d",
            "qmf23_3d",
            "qmf12_2d",
            "qmf12_3d",
            "qmf12_5d",
            "qmf235_2d",
            "qmf235_3d",
            "qmf235_5d",
            "satrec",
            "16qamModem",
            "4pamxmitrec",
            "blockVox",
            "overAddFFT",
            "phasedArray",
        ];
        assert_eq!(names, expect);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("satrec").is_some());
        assert!(by_name("qmf12_2d").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn filterbank_sizes_match_section_10() {
        let depth5 = by_name("qmf12_5d").unwrap();
        assert_eq!(depth5.actor_count(), 188);
        let depth3 = by_name("qmf12_3d").unwrap();
        assert_eq!(depth3.actor_count(), 44);
        let depth2 = by_name("qmf12_2d").unwrap();
        assert_eq!(depth2.actor_count(), 20);
    }
}
