//! Dynamic storage allocation for SDF buffer lifetimes (§9).
//!
//! Takes the weighted intersection graph produced by `sdf-lifetime` and
//! assigns every buffer an address in one shared memory pool, using the
//! first-fit heuristic in either of the paper's two orders (`ffdur`,
//! `ffstart`), with a best-fit placement variant for ablations, plus an
//! allocation validator.
//!
//! # Examples
//!
//! ```
//! use sdf_core::graph::EdgeId;
//! use sdf_lifetime::interval::PeriodicLifetime;
//! use sdf_lifetime::wig::{Buffer, IntersectionGraph};
//! use sdf_alloc::{allocate, validate_allocation, AllocationOrder, PlacementPolicy};
//!
//! # fn main() -> Result<(), sdf_core::SdfError> {
//! let wig = IntersectionGraph::from_buffers(vec![
//!     Buffer { edge: EdgeId::from_index(0), lifetime: PeriodicLifetime::solid(0, 2, 8) },
//!     Buffer { edge: EdgeId::from_index(1), lifetime: PeriodicLifetime::solid(2, 2, 8) },
//! ]);
//! let alloc = allocate(&wig, AllocationOrder::DurationDescending, PlacementPolicy::FirstFit);
//! validate_allocation(&wig, &alloc)?;
//! assert_eq!(alloc.total(), 8); // disjoint lifetimes overlay
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod first_fit;
pub mod optimal;
pub mod provenance;
pub mod stats;

pub use first_fit::{
    allocate, allocate_both_orders, allocate_incremental, allocate_with_provenance,
    placement_sequence, range_of_edge, validate_allocation, AllocSpliceStats, Allocation,
    AllocationOrder, AllocationReport, PlacementPolicy,
};
pub use optimal::{optimal_allocation, optimal_allocation_with_provenance, OptimalResult};
pub use provenance::{DecisionEngine, GapRejection, PlacementDecision, ProvenanceLog, RejectedGap};
pub use stats::{allocation_stats, AllocationStats};
