//! Exact dynamic storage allocation by branch and bound.
//!
//! §9.1 observes that the chromatic number (the memory an optimal
//! allocation needs) can exceed the maximum clique weight by up to 1.25×,
//! and leans on the empirical result that first-fit lands within a few
//! percent.  This module makes that measurable: an exact solver for small
//! instances, so the first-fit gap can be computed instead of assumed.
//!
//! The search places buffers in a fixed order, trying only *canonical*
//! offsets — 0 and the end of each already-placed conflicting buffer.
//! Some optimal allocation always uses canonical offsets (any placement
//! can be slid down until it hits 0 or another conflicting buffer without
//! increasing the total), so the restriction preserves optimality.

use sdf_lifetime::wig::ConflictGraph;

use crate::first_fit::{allocate, Allocation, AllocationOrder, PlacementPolicy};
use crate::provenance::{
    coalesce_ranges, describe_placement, DecisionEngine, PlacementDecision, ProvenanceLog,
};

/// Result of the exact search.
#[derive(Clone, Debug)]
pub struct OptimalResult {
    /// An optimal allocation.
    pub allocation: Allocation,
    /// Search nodes visited.
    pub nodes_visited: u64,
}

/// Finds a provably optimal allocation, or returns `None` if the search
/// exceeds `node_budget` nodes.
///
/// Use only on small instances (exponential worst case); the first-fit
/// result seeds the upper bound, so the search can only improve on it.
///
/// # Examples
///
/// ```
/// use sdf_core::graph::EdgeId;
/// use sdf_lifetime::interval::PeriodicLifetime;
/// use sdf_lifetime::wig::{Buffer, IntersectionGraph};
/// use sdf_alloc::optimal::optimal_allocation;
///
/// let wig = IntersectionGraph::from_buffers(vec![
///     Buffer { edge: EdgeId::from_index(0), lifetime: PeriodicLifetime::solid(0, 4, 3) },
///     Buffer { edge: EdgeId::from_index(1), lifetime: PeriodicLifetime::solid(2, 4, 5) },
///     Buffer { edge: EdgeId::from_index(2), lifetime: PeriodicLifetime::solid(5, 2, 3) },
/// ]);
/// let r = optimal_allocation(&wig, 1_000_000).expect("small instance");
/// assert_eq!(r.allocation.total(), 8);
/// ```
pub fn optimal_allocation<G: ConflictGraph + ?Sized>(
    graph: &G,
    node_budget: u64,
) -> Option<OptimalResult> {
    let n = graph.len();
    // Seed with first-fit (the paper's heuristic) as the incumbent.
    let seed = allocate(
        graph,
        AllocationOrder::DurationDescending,
        PlacementPolicy::FirstFit,
    );
    if n == 0 {
        return Some(OptimalResult {
            allocation: seed,
            nodes_visited: 0,
        });
    }

    // Place in descending size order (strong early pruning).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(graph.size(i)));

    struct Search<'a, G: ?Sized> {
        graph: &'a G,
        order: Vec<usize>,
        offsets: Vec<u64>,
        placed: Vec<bool>,
        best_offsets: Vec<u64>,
        best_total: u64,
        nodes: u64,
        budget: u64,
    }

    impl<G: ConflictGraph + ?Sized> Search<'_, G> {
        fn dfs(&mut self, depth: usize, total: u64) -> bool {
            if self.nodes >= self.budget {
                return false; // budget exhausted
            }
            self.nodes += 1;
            if total >= self.best_total {
                return true; // pruned
            }
            if depth == self.order.len() {
                self.best_total = total;
                self.best_offsets.clone_from(&self.offsets);
                return true;
            }
            let i = self.order[depth];
            let size = self.graph.size(i);
            // Canonical candidate offsets.
            let mut candidates: Vec<u64> = std::iter::once(0)
                .chain(
                    self.graph
                        .conflicts(i)
                        .iter()
                        .filter(|&&j| self.placed[j])
                        .map(|&j| self.offsets[j] + self.graph.size(j)),
                )
                .collect();
            candidates.sort_unstable();
            candidates.dedup();
            for off in candidates {
                // Feasible: no placed conflicting buffer overlaps [off, off+size).
                let clash = self.graph.conflicts(i).iter().any(|&j| {
                    self.placed[j]
                        && self.offsets[j] < off + size
                        && off < self.offsets[j] + self.graph.size(j)
                });
                if clash {
                    continue;
                }
                self.offsets[i] = off;
                self.placed[i] = true;
                let ok = self.dfs(depth + 1, total.max(off + size));
                self.placed[i] = false;
                if !ok {
                    return false;
                }
            }
            true
        }
    }

    let mut search = Search {
        graph,
        order,
        offsets: vec![0; n],
        placed: vec![false; n],
        best_offsets: seed.offsets().to_vec(),
        best_total: seed.total(),
        nodes: 0,
        budget: node_budget,
    };
    // Allow the search to re-find the incumbent total (strict pruning would
    // reject equal solutions, which is fine — we keep the seed then).
    search.best_total = seed.total() + 1;
    let completed = search.dfs(0, 0);
    if !completed {
        return None;
    }
    let total = search.best_total.min(seed.total());
    let offsets = if search.best_total <= seed.total() {
        search.best_offsets
    } else {
        seed.offsets().to_vec()
    };
    Some(OptimalResult {
        allocation: Allocation::from_parts(offsets, total),
        nodes_visited: search.nodes,
    })
}

/// Like [`optimal_allocation`], but also returns the decision ledger of
/// the winning layout, reconstructed by replaying it in the search's
/// placement order (descending size).
///
/// The ledger explains the *final* allocation — which gaps each buffer's
/// placement skipped, and what each decision cost — not the search's
/// internal backtracking.  Per-decision fragmentation attributions still
/// sum to the layout's total fragmentation.
pub fn optimal_allocation_with_provenance<G: ConflictGraph + ?Sized>(
    graph: &G,
    node_budget: u64,
) -> Option<(OptimalResult, ProvenanceLog)> {
    let result = optimal_allocation(graph, node_budget)?;
    let log = replay_provenance(graph, &result.allocation);
    Some((result, log))
}

/// Replays a finished allocation in descending-size order (the exact
/// search's own placement order) and records one audit decision per
/// buffer against the buffers replayed before it.
fn replay_provenance<G: ConflictGraph + ?Sized>(
    graph: &G,
    allocation: &Allocation,
) -> ProvenanceLog {
    let n = graph.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(graph.size(i)));
    let mut log = ProvenanceLog::new(DecisionEngine::Optimal);
    let mut placed = vec![false; n];
    let mut ranges: Vec<(u64, u64)> = Vec::new();
    for (sequence, &i) in order.iter().enumerate() {
        let size = graph.size(i);
        ranges.clear();
        ranges.extend(
            graph
                .conflicts(i)
                .iter()
                .filter(|&&j| placed[j])
                .map(|&j| (allocation.offset(j), allocation.offset(j) + graph.size(j))),
        );
        ranges.sort_unstable();
        coalesce_ranges(&mut ranges);
        let offset = allocation.offset(i);
        let (rejected, fragmentation) = describe_placement(&ranges, offset, size);
        log.decisions.push(PlacementDecision {
            buffer: i,
            sequence,
            size,
            start: graph.start(i),
            duration: graph.duration(i),
            probes: ranges.len() as u64 + 1,
            rejected,
            offset,
            fragmentation,
        });
        placed[i] = true;
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::first_fit::validate_allocation;
    use sdf_core::graph::EdgeId;
    use sdf_lifetime::interval::PeriodicLifetime;
    use sdf_lifetime::wig::{Buffer, IntersectionGraph};

    fn wig_of(lifetimes: Vec<PeriodicLifetime>) -> IntersectionGraph {
        IntersectionGraph::from_buffers(
            lifetimes
                .into_iter()
                .enumerate()
                .map(|(i, lifetime)| Buffer {
                    edge: EdgeId::from_index(i),
                    lifetime,
                })
                .collect(),
        )
    }

    #[test]
    fn beats_first_fit_on_a_known_bad_case() {
        // First-fit by size places the two big buffers at 0 and the small
        // long-lived one on top; a smarter interleave does better.
        // Buffers: A [0,2) size 4; B [1,3) size 4; C [0,3) size 4.
        // All conflict except A/?: A-B overlap at [1,2); everything
        // conflicts -> clique of 3 -> optimal 12. Make a sharing case:
        let w = wig_of(vec![
            PeriodicLifetime::solid(0, 2, 4), // A
            PeriodicLifetime::solid(2, 2, 4), // B (disjoint from A)
            PeriodicLifetime::solid(1, 3, 2), // C overlaps both
        ]);
        let r = optimal_allocation(&w, 1_000_000).unwrap();
        validate_allocation(&w, &r.allocation).unwrap();
        assert_eq!(r.allocation.total(), 6); // A,B overlay at 0; C at 4
    }

    #[test]
    fn optimal_never_exceeds_first_fit() {
        let w = wig_of(vec![
            PeriodicLifetime::solid(0, 5, 3),
            PeriodicLifetime::solid(1, 2, 7),
            PeriodicLifetime::solid(4, 4, 2),
            PeriodicLifetime::solid(6, 3, 5),
            PeriodicLifetime::solid(2, 6, 1),
        ]);
        let ff = allocate(
            &w,
            AllocationOrder::DurationDescending,
            PlacementPolicy::FirstFit,
        );
        let r = optimal_allocation(&w, 10_000_000).unwrap();
        validate_allocation(&w, &r.allocation).unwrap();
        assert!(r.allocation.total() <= ff.total());
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        let w = wig_of((0..12).map(|i| PeriodicLifetime::solid(i, 14, 3)).collect());
        assert!(optimal_allocation(&w, 5).is_none());
    }

    #[test]
    fn empty_instance() {
        let w = wig_of(vec![]);
        let r = optimal_allocation(&w, 10).unwrap();
        assert_eq!(r.allocation.total(), 0);
    }

    #[test]
    fn provenance_replay_covers_every_buffer_and_sums() {
        let w = wig_of(vec![
            PeriodicLifetime::solid(0, 5, 3),
            PeriodicLifetime::solid(1, 2, 7),
            PeriodicLifetime::solid(4, 4, 2),
            PeriodicLifetime::solid(6, 3, 5),
            PeriodicLifetime::solid(2, 6, 1),
        ]);
        let (r, log) = optimal_allocation_with_provenance(&w, 10_000_000).unwrap();
        validate_allocation(&w, &r.allocation).unwrap();
        assert_eq!(log.decisions.len(), w.len());
        // Every buffer appears exactly once, with its final offset.
        for d in &log.decisions {
            assert_eq!(d.offset, r.allocation.offset(d.buffer));
        }
        // Replayed in descending size: 7, 5, 3, 2, 1.
        let sizes: Vec<u64> = log.decisions.iter().map(|d| d.size).collect();
        assert_eq!(sizes, vec![7, 5, 3, 2, 1]);
    }

    #[test]
    fn single_buffer() {
        let w = wig_of(vec![PeriodicLifetime::solid(0, 3, 9)]);
        let r = optimal_allocation(&w, 100).unwrap();
        assert_eq!(r.allocation.total(), 9);
        assert_eq!(r.allocation.offset(0), 0);
    }
}
