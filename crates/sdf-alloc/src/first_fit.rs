//! First-fit dynamic storage allocation (§9, Fig. 19).
//!
//! Buffers are placed one at a time at the lowest address that does not
//! conflict with any already-placed buffer whose lifetime overlaps.  The
//! enumeration order matters; following the empirical study the paper cites
//! (\[20\]), ordering by descending duration (`ffdur`) and by ascending start
//! time (`ffstart`) are both provided, along with a best-fit variant for
//! ablation.

use sdf_core::error::SdfError;
use sdf_core::graph::EdgeId;
use sdf_lifetime::wig::{ConflictGraph, IntersectionGraph};

use crate::provenance::{describe_placement, DecisionEngine, PlacementDecision, ProvenanceLog};

/// The enumeration order fed to the allocator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AllocationOrder {
    /// Descending lifetime duration (envelope length), the paper's `ffdur`
    /// and its best performer on random instances.
    #[default]
    DurationDescending,
    /// Ascending earliest start time — the paper's `ffstart`.
    StartAscending,
    /// The WIG's intrinsic (SDF edge) order; ablation baseline.
    Insertion,
}

impl AllocationOrder {
    /// The two orders the paper evaluates (Table 1's `ffdur`/`ffstart`),
    /// in the engine's canonical lattice order.
    pub const PAPER: [AllocationOrder; 2] = [
        AllocationOrder::DurationDescending,
        AllocationOrder::StartAscending,
    ];

    /// The paper's short name: `ffdur`, `ffstart` or `insertion`.
    pub fn as_str(self) -> &'static str {
        match self {
            AllocationOrder::DurationDescending => "ffdur",
            AllocationOrder::StartAscending => "ffstart",
            AllocationOrder::Insertion => "insertion",
        }
    }
}

impl std::fmt::Display for AllocationOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for AllocationOrder {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "ffdur" => Ok(AllocationOrder::DurationDescending),
            "ffstart" => Ok(AllocationOrder::StartAscending),
            "insertion" => Ok(AllocationOrder::Insertion),
            other => Err(format!(
                "unknown allocation order `{other}` (expected ffdur, ffstart or insertion)"
            )),
        }
    }
}

/// The placement policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Lowest feasible address (the paper's first-fit).
    #[default]
    FirstFit,
    /// Smallest feasible gap (best-fit); ablation variant.
    BestFit,
}

/// A completed allocation: one address per buffer of the WIG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Allocation {
    offsets: Vec<u64>,
    total: u64,
}

impl Allocation {
    /// Assembles an allocation from raw parts (used by the exact solver;
    /// callers should run [`validate_allocation`] afterwards).
    pub fn from_parts(offsets: Vec<u64>, total: u64) -> Self {
        Allocation { offsets, total }
    }

    /// The address assigned to buffer `index` (WIG order).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn offset(&self, index: usize) -> u64 {
        self.offsets[index]
    }

    /// All offsets, indexed like the WIG's buffers.
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Total memory words required: `max(offset + size)`.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// Allocates every buffer of `wig` with first-fit in the given order.
///
/// # Examples
///
/// ```
/// use sdf_core::graph::EdgeId;
/// use sdf_lifetime::interval::PeriodicLifetime;
/// use sdf_lifetime::wig::{Buffer, IntersectionGraph};
/// use sdf_alloc::first_fit::{allocate, AllocationOrder, PlacementPolicy};
///
/// // Two disjoint buffers share one location; a third overlaps both.
/// let wig = IntersectionGraph::from_buffers(vec![
///     Buffer { edge: EdgeId::from_index(0), lifetime: PeriodicLifetime::solid(0, 2, 4) },
///     Buffer { edge: EdgeId::from_index(1), lifetime: PeriodicLifetime::solid(2, 2, 4) },
///     Buffer { edge: EdgeId::from_index(2), lifetime: PeriodicLifetime::solid(0, 4, 2) },
/// ]);
/// let alloc = allocate(&wig, AllocationOrder::DurationDescending, PlacementPolicy::FirstFit);
/// assert_eq!(alloc.total(), 6); // 4 shared + 2
/// ```
pub fn allocate<G: ConflictGraph + ?Sized>(
    wig: &G,
    order: AllocationOrder,
    policy: PlacementPolicy,
) -> Allocation {
    allocate_inner(wig, order, policy, None)
}

/// Like [`allocate`], but also returns the full decision ledger: per
/// buffer, in placement order, the probes made, the gaps rejected (with
/// reasons) and the fragmentation words attributed to that decision.
///
/// The returned allocation is bit-identical to what [`allocate`] produces
/// for the same inputs — provenance recording never influences placement.
pub fn allocate_with_provenance<G: ConflictGraph + ?Sized>(
    wig: &G,
    order: AllocationOrder,
    policy: PlacementPolicy,
) -> (Allocation, ProvenanceLog) {
    let mut log = ProvenanceLog::new(DecisionEngine::FirstFit { order, policy });
    let allocation = allocate_inner(wig, order, policy, Some(&mut log));
    (allocation, log)
}

/// The deterministic placement sequence `order` induces on `wig` — the
/// exact enumeration [`allocate`] walks, exposed so the incremental
/// allocator can compare sequences across runs.
pub fn placement_sequence<G: ConflictGraph + ?Sized>(
    wig: &G,
    order: AllocationOrder,
) -> Vec<usize> {
    let n = wig.len();
    let mut sequence: Vec<usize> = (0..n).collect();
    match order {
        AllocationOrder::DurationDescending => {
            sequence.sort_by_key(|&i| (std::cmp::Reverse(wig.duration(i)), wig.start(i), i));
        }
        AllocationOrder::StartAscending => {
            sequence.sort_by_key(|&i| (wig.start(i), i));
        }
        AllocationOrder::Insertion => {}
    }
    sequence
}

fn allocate_inner<G: ConflictGraph + ?Sized>(
    wig: &G,
    order: AllocationOrder,
    policy: PlacementPolicy,
    mut provenance: Option<&mut ProvenanceLog>,
) -> Allocation {
    let n = wig.len();
    let sequence = placement_sequence(wig, order);

    let _span = sdf_trace::span!("alloc.allocate", order = order, buffers = n);
    let traced = sdf_trace::enabled();
    let mut probes = 0u64;
    let mut failures = 0u64;
    let mut fragmentation = 0u64;

    let mut offsets = vec![0u64; n];
    let mut placed = vec![false; n];
    let mut total = 0u64;
    // One scratch buffer for the occupied ranges, reused across the whole
    // placement loop instead of allocating per buffer.
    let mut ranges: Vec<(u64, u64)> = Vec::new();
    let mut range_merges = 0u64;
    for (sequence_pos, &i) in sequence.iter().enumerate() {
        let size = wig.size(i);
        // Occupied ranges among already-placed overlapping neighbours.
        ranges.clear();
        ranges.extend(
            wig.conflicts(i)
                .iter()
                .filter(|&&j| placed[j])
                .map(|&j| (offsets[j], offsets[j] + wig.size(j))),
        );
        ranges.sort_unstable();
        range_merges += crate::provenance::coalesce_ranges(&mut ranges);
        let offset = match policy {
            PlacementPolicy::FirstFit => first_fit_offset(&ranges, size),
            PlacementPolicy::BestFit => best_fit_offset(&ranges, size),
        };
        if traced || provenance.is_some() {
            // One probe per conflicting range inspected plus the final
            // placement; a range starting below the chosen offset is a
            // candidate position the buffer could not take. The words in
            // [0, offset) not covered by any conflicting range are gaps
            // this placement skipped over (fragmentation). The audit
            // derivation walks the same coalesced ranges, so the ledger
            // attribution and the counter agree word for word.
            let (rejected, decision_fragmentation) = describe_placement(&ranges, offset, size);
            if traced {
                probes += ranges.len() as u64 + 1;
                failures += ranges.iter().filter(|&&(s, _)| s < offset).count() as u64;
                fragmentation += decision_fragmentation;
                sdf_trace::histogram_record("alloc.buffer_words", size);
            }
            if let Some(log) = provenance.as_deref_mut() {
                log.decisions.push(PlacementDecision {
                    buffer: i,
                    sequence: sequence_pos,
                    size,
                    start: wig.start(i),
                    duration: wig.duration(i),
                    probes: ranges.len() as u64 + 1,
                    rejected,
                    offset,
                    fragmentation: decision_fragmentation,
                });
            }
        }
        offsets[i] = offset;
        placed[i] = true;
        total = total.max(offset + size);
    }
    if traced {
        sdf_trace::counter_inc("alloc.first_fit.runs");
        sdf_trace::counter_add("alloc.first_fit.probes", probes);
        sdf_trace::counter_add("alloc.first_fit.placement_failures", failures);
        sdf_trace::counter_add("alloc.first_fit.range_merges", range_merges);
        // Both shapes on purpose: the gauge is last-writer-wins across
        // engine candidates (handy for "what did the winning run waste"),
        // while the counter accumulates per run so the regression sentinel
        // gates every candidate's fragmentation, not just the last one.
        sdf_trace::counter_add("alloc.first_fit.fragmentation", fragmentation);
        sdf_trace::gauge_set("alloc.fragmentation_words", fragmentation);
    }
    Allocation { offsets, total }
}

/// Lowest address where a block of `size` fits between `ranges` (sorted by
/// start).
fn first_fit_offset(ranges: &[(u64, u64)], size: u64) -> u64 {
    let mut candidate = 0u64;
    for &(start, end) in ranges {
        if candidate + size <= start {
            break;
        }
        candidate = candidate.max(end);
    }
    candidate
}

/// Feasible address with the smallest leftover gap; ties go to the lower
/// address, and the unbounded gap after the last range is used only if no
/// bounded gap fits.
fn best_fit_offset(ranges: &[(u64, u64)], size: u64) -> u64 {
    let mut best: Option<(u64, u64)> = None; // (gap leftover, offset)
    let mut cursor = 0u64;
    for &(start, end) in ranges {
        if start > cursor {
            let gap = start - cursor;
            if gap >= size {
                let leftover = gap - size;
                if best.is_none_or(|(bl, _)| leftover < bl) {
                    best = Some((leftover, cursor));
                }
            }
        }
        cursor = cursor.max(end);
    }
    match best {
        Some((_, offset)) => offset,
        None => cursor,
    }
}

/// Reuse accounting of one [`allocate_incremental`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocSpliceStats {
    /// Placements copied from the previous allocation (the clean
    /// sequence prefix).
    pub reused_placements: u64,
    /// Placements recomputed by the first-fit scan.
    pub recomputed_placements: u64,
}

/// Delta-driven first-fit: replays the previous allocation's placement
/// prefix and re-runs the scan only from the first position where the
/// enumeration diverges or meets a dirty buffer.
///
/// First-fit placement is sequential: the address of the buffer at
/// position `p` depends only on the sizes, conflicts and offsets of the
/// buffers placed at positions `0..p`. If the new and previous placement
/// sequences agree on a prefix of clean buffers (unchanged lifetimes,
/// hence unchanged sizes, starts, durations and pairwise conflicts), the
/// previous offsets of that prefix are exactly what a cold run would
/// compute, so they are copied and the loop resumes at the first
/// divergent or dirty position. The result is bit-identical to
/// [`allocate`] on the same `wig` under the cleanliness contract of
/// [`sdf_lifetime::wig::IntersectionGraph::build_spliced`]; callers
/// still run [`validate_allocation`] and byte-level equality asserts
/// rather than assuming it.
///
/// `dirty` flags follow WIG buffer indices (SDF edge order) of the NEW
/// wig; `prev_wig`/`prev_alloc` are the previous run's intersection
/// graph and allocation under the same enumeration `order`.
pub fn allocate_incremental<G: ConflictGraph + ?Sized, H: ConflictGraph + ?Sized>(
    wig: &G,
    order: AllocationOrder,
    policy: PlacementPolicy,
    prev_wig: &H,
    prev_alloc: &Allocation,
    dirty: &[bool],
) -> (Allocation, AllocSpliceStats) {
    let n = wig.len();
    assert_eq!(dirty.len(), n, "one dirty flag per buffer");
    let sequence = placement_sequence(wig, order);
    let prev_sequence = placement_sequence(prev_wig, order);
    // Longest common prefix of the two enumerations consisting solely of
    // clean buffers: those placements replay bit-for-bit.
    let mut reuse = 0usize;
    while reuse < sequence.len()
        && reuse < prev_sequence.len()
        && sequence[reuse] == prev_sequence[reuse]
        && !dirty[sequence[reuse]]
    {
        reuse += 1;
    }

    let mut offsets = vec![0u64; n];
    let mut placed = vec![false; n];
    let mut total = 0u64;
    for &i in &sequence[..reuse] {
        offsets[i] = prev_alloc.offset(i);
        placed[i] = true;
        total = total.max(offsets[i] + wig.size(i));
    }
    let mut ranges: Vec<(u64, u64)> = Vec::new();
    for &i in &sequence[reuse..] {
        let size = wig.size(i);
        ranges.clear();
        ranges.extend(
            wig.conflicts(i)
                .iter()
                .filter(|&&j| placed[j])
                .map(|&j| (offsets[j], offsets[j] + wig.size(j))),
        );
        ranges.sort_unstable();
        crate::provenance::coalesce_ranges(&mut ranges);
        let offset = match policy {
            PlacementPolicy::FirstFit => first_fit_offset(&ranges, size),
            PlacementPolicy::BestFit => best_fit_offset(&ranges, size),
        };
        offsets[i] = offset;
        placed[i] = true;
        total = total.max(offset + size);
    }
    (
        Allocation { offsets, total },
        AllocSpliceStats {
            reused_placements: reuse as u64,
            recomputed_placements: (n - reuse) as u64,
        },
    )
}

/// Checks that no two time-overlapping buffers occupy overlapping address
/// ranges.
///
/// # Errors
///
/// Returns [`SdfError::InvalidSchedule`] describing the first conflicting
/// pair found (reusing the schedule-error variant for allocation
/// conflicts).
pub fn validate_allocation<G: ConflictGraph + ?Sized>(
    wig: &G,
    allocation: &Allocation,
) -> Result<(), SdfError> {
    for i in 0..wig.len() {
        for &j in wig.conflicts(i) {
            if j <= i {
                continue;
            }
            let (oi, si) = (allocation.offset(i), wig.size(i));
            let (oj, sj) = (allocation.offset(j), wig.size(j));
            if oi < oj + sj && oj < oi + si {
                return Err(SdfError::InvalidSchedule(format!(
                    "buffers {i} and {j} overlap in both time and address space"
                )));
            }
        }
    }
    Ok(())
}

/// Convenience summary of one complete allocation run.
#[derive(Clone, Debug)]
pub struct AllocationReport {
    /// The allocation itself.
    pub allocation: Allocation,
    /// The order used.
    pub order: AllocationOrder,
    /// The placement policy used.
    pub policy: PlacementPolicy,
}

/// Runs `ffdur` and `ffstart` and returns both reports (the paper reports
/// both columns in Table 1).
pub fn allocate_both_orders<G: ConflictGraph + ?Sized>(
    wig: &G,
) -> (AllocationReport, AllocationReport) {
    let ffdur = AllocationReport {
        allocation: allocate(
            wig,
            AllocationOrder::DurationDescending,
            PlacementPolicy::FirstFit,
        ),
        order: AllocationOrder::DurationDescending,
        policy: PlacementPolicy::FirstFit,
    };
    let ffstart = AllocationReport {
        allocation: allocate(
            wig,
            AllocationOrder::StartAscending,
            PlacementPolicy::FirstFit,
        ),
        order: AllocationOrder::StartAscending,
        policy: PlacementPolicy::FirstFit,
    };
    (ffdur, ffstart)
}

/// Returns the address range assigned to the buffer implementing `edge`.
///
/// # Errors
///
/// Returns [`SdfError::UnknownEdge`] if no buffer implements `edge`.
pub fn range_of_edge(
    wig: &IntersectionGraph,
    allocation: &Allocation,
    edge: EdgeId,
) -> Result<(u64, u64), SdfError> {
    let i = wig.buffer_of_edge(edge)?;
    let o = allocation.offset(i);
    Ok((o, o + wig.buffer(i).lifetime.size()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdf_lifetime::interval::{Period, PeriodicLifetime};
    use sdf_lifetime::wig::Buffer;

    fn wig_of(lifetimes: Vec<PeriodicLifetime>) -> IntersectionGraph {
        IntersectionGraph::from_buffers(
            lifetimes
                .into_iter()
                .enumerate()
                .map(|(i, lifetime)| Buffer {
                    edge: EdgeId::from_index(i),
                    lifetime,
                })
                .collect(),
        )
    }

    #[test]
    fn disjoint_buffers_share_memory() {
        let w = wig_of(vec![
            PeriodicLifetime::solid(0, 2, 10),
            PeriodicLifetime::solid(2, 2, 10),
            PeriodicLifetime::solid(4, 2, 10),
        ]);
        for order in [
            AllocationOrder::DurationDescending,
            AllocationOrder::StartAscending,
            AllocationOrder::Insertion,
        ] {
            let a = allocate(&w, order, PlacementPolicy::FirstFit);
            assert_eq!(a.total(), 10, "{order:?}");
            validate_allocation(&w, &a).unwrap();
        }
    }

    #[test]
    fn overlapping_buffers_stack() {
        let w = wig_of(vec![
            PeriodicLifetime::solid(0, 4, 3),
            PeriodicLifetime::solid(1, 4, 5),
            PeriodicLifetime::solid(2, 4, 7),
        ]);
        let a = allocate(
            &w,
            AllocationOrder::StartAscending,
            PlacementPolicy::FirstFit,
        );
        assert_eq!(a.total(), 15);
        validate_allocation(&w, &a).unwrap();
    }

    #[test]
    fn first_fit_reuses_gaps() {
        // Big dies early, small lives long: after placing big at 0 and
        // long-lived at 8, a later buffer that only overlaps the long one
        // goes back to address 0.
        let w = wig_of(vec![
            PeriodicLifetime::solid(0, 2, 8),  // [0,2) size 8
            PeriodicLifetime::solid(0, 10, 2), // [0,10) size 2
            PeriodicLifetime::solid(5, 3, 4),  // [5,8) size 4 — only overlaps #1
        ]);
        let a = allocate(&w, AllocationOrder::Insertion, PlacementPolicy::FirstFit);
        assert_eq!(a.offset(0), 0);
        assert_eq!(a.offset(1), 8);
        assert_eq!(a.offset(2), 0);
        assert_eq!(a.total(), 10);
        validate_allocation(&w, &a).unwrap();
    }

    #[test]
    fn first_fit_gap_between_ranges() {
        // Neighbour ranges [0,2) and [10,14): a size-3 block fits at 2.
        assert_eq!(first_fit_offset(&[(0, 2), (10, 14)], 3), 2);
        assert_eq!(first_fit_offset(&[(0, 2), (10, 14)], 8), 2);
        assert_eq!(first_fit_offset(&[(0, 2), (10, 14)], 9), 14);
        assert_eq!(first_fit_offset(&[], 5), 0);
        assert_eq!(first_fit_offset(&[(0, 4)], 1), 4);
    }

    #[test]
    fn best_fit_prefers_tightest_gap() {
        // Gaps: [2,10) (size 8) and [12,15) (size 3). A size-3 block best-
        // fits at 12, first-fits at 2.
        let ranges = [(0, 2), (10, 12), (15, 20)];
        assert_eq!(first_fit_offset(&ranges, 3), 2);
        assert_eq!(best_fit_offset(&ranges, 3), 12);
        // Too big for any gap: both go after the end.
        assert_eq!(best_fit_offset(&ranges, 9), 20);
    }

    #[test]
    fn periodic_sharing_mcw_example() {
        // Fig. 17's AB and CD share one location; BC overlaps both.
        let ab = PeriodicLifetime::periodic(
            0,
            2,
            1,
            vec![
                Period {
                    stride: 4,
                    count: 2,
                },
                Period {
                    stride: 9,
                    count: 2,
                },
            ],
        );
        let cd = PeriodicLifetime::periodic(
            2,
            2,
            1,
            vec![
                Period {
                    stride: 4,
                    count: 2,
                },
                Period {
                    stride: 9,
                    count: 2,
                },
            ],
        );
        let bc = PeriodicLifetime::periodic(
            1,
            2,
            1,
            vec![
                Period {
                    stride: 4,
                    count: 2,
                },
                Period {
                    stride: 9,
                    count: 2,
                },
            ],
        );
        let w = wig_of(vec![ab, bc, cd]);
        let a = allocate(
            &w,
            AllocationOrder::StartAscending,
            PlacementPolicy::FirstFit,
        );
        assert_eq!(a.total(), 2); // AB and CD overlay; BC stacked above.
        assert_eq!(a.offset(0), a.offset(2));
        validate_allocation(&w, &a).unwrap();
    }

    #[test]
    fn allocate_both_orders_returns_both() {
        let w = wig_of(vec![
            PeriodicLifetime::solid(0, 4, 3),
            PeriodicLifetime::solid(2, 8, 5),
        ]);
        let (ffdur, ffstart) = allocate_both_orders(&w);
        assert_eq!(ffdur.order, AllocationOrder::DurationDescending);
        assert_eq!(ffstart.order, AllocationOrder::StartAscending);
        assert_eq!(ffdur.allocation.total(), 8);
        assert_eq!(ffstart.allocation.total(), 8);
    }

    #[test]
    fn validation_catches_conflicts() {
        let w = wig_of(vec![
            PeriodicLifetime::solid(0, 4, 3),
            PeriodicLifetime::solid(2, 8, 5),
        ]);
        let bad = Allocation {
            offsets: vec![0, 1],
            total: 6,
        };
        assert!(validate_allocation(&w, &bad).is_err());
    }

    #[test]
    fn range_of_edge_lookup() {
        let w = wig_of(vec![PeriodicLifetime::solid(0, 4, 3)]);
        let a = allocate(&w, AllocationOrder::Insertion, PlacementPolicy::FirstFit);
        assert_eq!(
            range_of_edge(&w, &a, EdgeId::from_index(0)).unwrap(),
            (0, 3)
        );
        assert!(range_of_edge(&w, &a, EdgeId::from_index(7)).is_err());
    }

    #[test]
    fn overlapping_neighbour_ranges_coalesce() {
        // Buffers 0–2 are pairwise disjoint in time, so all three stack at
        // address 0 with overlapping address ranges [0,4), [0,4), [0,2).
        // Buffer 3 overlaps all of them: the coalesced scan must see one
        // solid block [0,4) and place it at 4.
        let w = wig_of(vec![
            PeriodicLifetime::solid(0, 2, 4),
            PeriodicLifetime::solid(2, 2, 4),
            PeriodicLifetime::solid(4, 2, 2),
            PeriodicLifetime::solid(0, 6, 1),
        ]);
        let a = allocate(&w, AllocationOrder::Insertion, PlacementPolicy::FirstFit);
        assert_eq!(a.offset(0), 0);
        assert_eq!(a.offset(1), 0);
        assert_eq!(a.offset(2), 0);
        assert_eq!(a.offset(3), 4);
        assert_eq!(a.total(), 5);
        validate_allocation(&w, &a).unwrap();
    }

    /// A WIG whose last (insertion-order) placement must skip a gap one
    /// word too small: occupied [0,2) and [10,14), buffer size 9 lands at
    /// 14 and owns 8 words of fragmentation.
    fn fragmented_wig() -> IntersectionGraph {
        wig_of(vec![
            PeriodicLifetime::solid(0, 20, 2), // @0  -> [0,2)
            PeriodicLifetime::solid(0, 5, 8),  // @2  -> [2,10)
            PeriodicLifetime::solid(0, 20, 4), // @10 -> [10,14)
            PeriodicLifetime::solid(6, 14, 9), // conflicts #0 and #2 only
        ])
    }

    #[test]
    fn provenance_never_changes_the_allocation() {
        let w = fragmented_wig();
        for order in [
            AllocationOrder::DurationDescending,
            AllocationOrder::StartAscending,
            AllocationOrder::Insertion,
        ] {
            for policy in [PlacementPolicy::FirstFit, PlacementPolicy::BestFit] {
                let plain = allocate(&w, order, policy);
                let (audited, log) = allocate_with_provenance(&w, order, policy);
                assert_eq!(plain, audited, "{order:?}/{policy:?}");
                assert_eq!(log.decisions.len(), w.len());
            }
        }
    }

    #[test]
    fn ledger_attributes_the_skipped_gap() {
        let w = fragmented_wig();
        let (a, log) =
            allocate_with_provenance(&w, AllocationOrder::Insertion, PlacementPolicy::FirstFit);
        assert_eq!(a.offset(3), 14);
        let d = log.decision_for(3).unwrap();
        assert_eq!(d.offset, 14);
        assert_eq!(d.fragmentation, 8);
        assert_eq!(d.rejected.len(), 1);
        assert_eq!(d.rejected[0].start, 2);
        assert_eq!(d.rejected[0].end, 10);
        assert_eq!(
            d.rejected[0].reason,
            crate::provenance::GapRejection::TooSmall { shortfall: 1 }
        );
        assert_eq!(log.fragmentation_words(), 8);
    }

    #[test]
    fn ledger_sum_matches_traced_instruments() {
        let w = fragmented_wig();
        let recorder = std::sync::Arc::new(sdf_trace::Recorder::new());
        let (_, log) = sdf_trace::scoped(&recorder, || {
            allocate_with_provenance(&w, AllocationOrder::Insertion, PlacementPolicy::FirstFit)
        });
        let snap = recorder.snapshot();
        let gauge = snap
            .gauges
            .iter()
            .find(|(n, _)| n == "alloc.fragmentation_words")
            .map(|&(_, v)| v)
            .unwrap();
        let counter = snap
            .counters
            .iter()
            .find(|(n, _)| n == "alloc.first_fit.fragmentation")
            .map(|&(_, v)| v)
            .unwrap();
        assert_eq!(log.fragmentation_words(), gauge);
        assert_eq!(gauge, counter);
        assert_eq!(log.probe_total(), {
            snap.counters
                .iter()
                .find(|(n, _)| n == "alloc.first_fit.probes")
                .map(|&(_, v)| v)
                .unwrap()
        });
    }

    #[test]
    fn incremental_matches_cold_on_dirty_suffix() {
        // Previous instance: four solid lifetimes. The edit perturbs
        // buffer 2's duration and size; buffers 0/1 stay clean.
        let prev_w = wig_of(vec![
            PeriodicLifetime::solid(0, 9, 4),
            PeriodicLifetime::solid(1, 7, 3),
            PeriodicLifetime::solid(2, 5, 2),
            PeriodicLifetime::solid(3, 3, 6),
        ]);
        let next_w = wig_of(vec![
            PeriodicLifetime::solid(0, 9, 4),
            PeriodicLifetime::solid(1, 7, 3),
            PeriodicLifetime::solid(2, 8, 5),
            PeriodicLifetime::solid(3, 3, 6),
        ]);
        let dirty = [false, false, true, false];
        for order in [
            AllocationOrder::DurationDescending,
            AllocationOrder::StartAscending,
            AllocationOrder::Insertion,
        ] {
            for policy in [PlacementPolicy::FirstFit, PlacementPolicy::BestFit] {
                let prev_a = allocate(&prev_w, order, policy);
                let cold = allocate(&next_w, order, policy);
                let (warm, stats) =
                    allocate_incremental(&next_w, order, policy, &prev_w, &prev_a, &dirty);
                assert_eq!(warm, cold, "{order:?}/{policy:?}");
                validate_allocation(&next_w, &warm).unwrap();
                assert_eq!(
                    stats.reused_placements + stats.recomputed_placements,
                    next_w.len() as u64
                );
            }
        }
    }

    #[test]
    fn incremental_reuses_the_clean_prefix() {
        // ffstart enumerates by ascending start: 0,1,2,3. Buffer 3 is the
        // only dirty one, so three placements replay.
        let prev_w = wig_of(vec![
            PeriodicLifetime::solid(0, 4, 4),
            PeriodicLifetime::solid(1, 4, 3),
            PeriodicLifetime::solid(2, 4, 2),
            PeriodicLifetime::solid(3, 4, 6),
        ]);
        let next_w = wig_of(vec![
            PeriodicLifetime::solid(0, 4, 4),
            PeriodicLifetime::solid(1, 4, 3),
            PeriodicLifetime::solid(2, 4, 2),
            PeriodicLifetime::solid(3, 9, 1),
        ]);
        let prev_a = allocate(
            &prev_w,
            AllocationOrder::StartAscending,
            PlacementPolicy::FirstFit,
        );
        let (warm, stats) = allocate_incremental(
            &next_w,
            AllocationOrder::StartAscending,
            PlacementPolicy::FirstFit,
            &prev_w,
            &prev_a,
            &[false, false, false, true],
        );
        assert_eq!(stats.reused_placements, 3);
        assert_eq!(stats.recomputed_placements, 1);
        assert_eq!(
            warm,
            allocate(
                &next_w,
                AllocationOrder::StartAscending,
                PlacementPolicy::FirstFit
            )
        );
    }

    #[test]
    fn empty_wig_allocates_zero() {
        let w = wig_of(vec![]);
        let a = allocate(&w, AllocationOrder::Insertion, PlacementPolicy::FirstFit);
        assert_eq!(a.total(), 0);
    }

    #[test]
    fn total_at_least_mcw() {
        use sdf_lifetime::clique::mcw_optimistic;
        let w = wig_of(vec![
            PeriodicLifetime::solid(0, 6, 4),
            PeriodicLifetime::solid(1, 2, 3),
            PeriodicLifetime::solid(4, 4, 2),
            PeriodicLifetime::solid(8, 2, 9),
        ]);
        let a = allocate(
            &w,
            AllocationOrder::DurationDescending,
            PlacementPolicy::FirstFit,
        );
        assert!(a.total() >= mcw_optimistic(&w));
        validate_allocation(&w, &a).unwrap();
    }
}
