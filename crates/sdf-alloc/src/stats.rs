//! Summary statistics of a completed allocation — the numbers a user
//! checks to judge how well lifetime sharing worked.

use sdf_lifetime::wig::ConflictGraph;

use crate::first_fit::Allocation;

/// Aggregate measures of one allocation.
#[derive(Clone, Debug, PartialEq)]
pub struct AllocationStats {
    /// Pool size in words (`max(offset + size)`).
    pub total: u64,
    /// What a non-shared implementation would need: the sum of all buffer
    /// sizes.
    pub nonshared_total: u64,
    /// `nonshared_total / total` — how many times over the pool is reused
    /// (1.0 means no sharing happened).
    pub packing_factor: f64,
    /// Number of buffers placed.
    pub buffer_count: usize,
    /// The largest number of other buffers any buffer conflicts with.
    pub max_conflict_degree: usize,
    /// Buffers that share their address range with at least one
    /// time-disjoint buffer.
    pub overlaid_buffers: usize,
}

/// Computes statistics for `allocation` over the conflict graph it was
/// built from.
///
/// # Examples
///
/// ```
/// use sdf_core::graph::EdgeId;
/// use sdf_lifetime::interval::PeriodicLifetime;
/// use sdf_lifetime::wig::{Buffer, IntersectionGraph};
/// use sdf_alloc::{allocate, AllocationOrder, PlacementPolicy};
/// use sdf_alloc::stats::allocation_stats;
///
/// let wig = IntersectionGraph::from_buffers(vec![
///     Buffer { edge: EdgeId::from_index(0), lifetime: PeriodicLifetime::solid(0, 2, 6) },
///     Buffer { edge: EdgeId::from_index(1), lifetime: PeriodicLifetime::solid(2, 2, 6) },
/// ]);
/// let alloc = allocate(&wig, AllocationOrder::DurationDescending, PlacementPolicy::FirstFit);
/// let stats = allocation_stats(&wig, &alloc);
/// assert_eq!(stats.total, 6);
/// assert_eq!(stats.packing_factor, 2.0);
/// assert_eq!(stats.overlaid_buffers, 2);
/// ```
pub fn allocation_stats<G: ConflictGraph + ?Sized>(
    graph: &G,
    allocation: &Allocation,
) -> AllocationStats {
    let n = graph.len();
    let nonshared_total: u64 = (0..n).map(|i| graph.size(i)).sum();
    let total = allocation.total();
    let max_conflict_degree = (0..n).map(|i| graph.conflicts(i).len()).max().unwrap_or(0);

    // A buffer is "overlaid" if some non-conflicting buffer occupies an
    // overlapping address range.
    let mut overlaid = vec![false; n];
    for i in 0..n {
        for j in (i + 1)..n {
            if graph.conflicts(i).binary_search(&j).is_ok() {
                continue;
            }
            let (oi, si) = (allocation.offset(i), graph.size(i));
            let (oj, sj) = (allocation.offset(j), graph.size(j));
            if oi < oj + sj && oj < oi + si {
                overlaid[i] = true;
                overlaid[j] = true;
            }
        }
    }

    AllocationStats {
        total,
        nonshared_total,
        packing_factor: if total == 0 {
            1.0
        } else {
            nonshared_total as f64 / total as f64
        },
        buffer_count: n,
        max_conflict_degree,
        overlaid_buffers: overlaid.iter().filter(|&&b| b).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::first_fit::{allocate, AllocationOrder, PlacementPolicy};
    use sdf_core::graph::EdgeId;
    use sdf_lifetime::interval::PeriodicLifetime;
    use sdf_lifetime::wig::{Buffer, IntersectionGraph};

    fn wig_of(lifetimes: Vec<PeriodicLifetime>) -> IntersectionGraph {
        IntersectionGraph::from_buffers(
            lifetimes
                .into_iter()
                .enumerate()
                .map(|(i, lifetime)| Buffer {
                    edge: EdgeId::from_index(i),
                    lifetime,
                })
                .collect(),
        )
    }

    #[test]
    fn no_sharing_possible() {
        let w = wig_of(vec![
            PeriodicLifetime::solid(0, 4, 3),
            PeriodicLifetime::solid(1, 4, 5),
        ]);
        let a = allocate(
            &w,
            AllocationOrder::StartAscending,
            PlacementPolicy::FirstFit,
        );
        let s = allocation_stats(&w, &a);
        assert_eq!(s.total, 8);
        assert_eq!(s.nonshared_total, 8);
        assert_eq!(s.packing_factor, 1.0);
        assert_eq!(s.overlaid_buffers, 0);
        assert_eq!(s.max_conflict_degree, 1);
    }

    #[test]
    fn full_overlay() {
        let w = wig_of(vec![
            PeriodicLifetime::solid(0, 1, 4),
            PeriodicLifetime::solid(1, 1, 4),
            PeriodicLifetime::solid(2, 1, 4),
        ]);
        let a = allocate(
            &w,
            AllocationOrder::StartAscending,
            PlacementPolicy::FirstFit,
        );
        let s = allocation_stats(&w, &a);
        assert_eq!(s.total, 4);
        assert_eq!(s.packing_factor, 3.0);
        assert_eq!(s.overlaid_buffers, 3);
        assert_eq!(s.max_conflict_degree, 0);
    }

    #[test]
    fn empty_graph() {
        let w = wig_of(vec![]);
        let a = allocate(&w, AllocationOrder::Insertion, PlacementPolicy::FirstFit);
        let s = allocation_stats(&w, &a);
        assert_eq!(s.total, 0);
        assert_eq!(s.packing_factor, 1.0);
        assert_eq!(s.buffer_count, 0);
    }
}
