//! Allocation provenance: a per-decision audit trail for the shared pool.
//!
//! The allocators in this crate compress a whole placement history into a
//! single number (`Allocation::total`) and one opaque gauge
//! (`alloc.fragmentation_words`).  This module records *why* the layout
//! came out the way it did: for every buffer, in placement order, which
//! gaps were probed, which were rejected (and whether they were too small
//! or skipped by policy), where the buffer finally landed, and how many
//! words of pool waste that single decision is responsible for.
//!
//! The fragmentation attribution is exact by construction: each decision's
//! [`PlacementDecision::fragmentation`] counts the words in
//! `[0, offset)` not covered by any conflicting placed buffer — the same
//! quantity the allocator accumulates into `alloc.fragmentation_words` —
//! so the ledger provably sums to the run's fragmentation total
//! ([`ProvenanceLog::fragmentation_words`]).

use crate::first_fit::{AllocationOrder, PlacementPolicy};

/// Why a free gap was not used for a placement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GapRejection {
    /// The gap was smaller than the buffer by `shortfall` words.
    TooSmall {
        /// Words missing: `size - gap_length`.
        shortfall: u64,
    },
    /// The gap was big enough but the policy (best-fit tightness, or the
    /// exact search's global optimisation) placed the buffer elsewhere,
    /// leaving `waste` spare words in this gap.
    PolicySkip {
        /// Spare words the gap would have left: `gap_length - size`.
        waste: u64,
    },
}

impl GapRejection {
    /// Short machine-readable label: `too_small` or `policy_skip`.
    pub fn as_str(self) -> &'static str {
        match self {
            GapRejection::TooSmall { .. } => "too_small",
            GapRejection::PolicySkip { .. } => "policy_skip",
        }
    }
}

/// One free gap the allocator considered and rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RejectedGap {
    /// First address of the gap.
    pub start: u64,
    /// One past the last address of the gap.
    pub end: u64,
    /// Why the gap was not used.
    pub reason: GapRejection,
}

/// The complete audit record of one buffer's placement.
#[derive(Clone, Debug)]
pub struct PlacementDecision {
    /// WIG buffer index this decision placed.
    pub buffer: usize,
    /// Position in the placement sequence (0 = placed first).
    pub sequence: usize,
    /// Buffer size in words.
    pub size: u64,
    /// Earliest start of the buffer's lifetime (for storytelling).
    pub start: u64,
    /// Envelope duration of the buffer's lifetime.
    pub duration: u64,
    /// Positions probed: one per conflicting occupied range plus the
    /// final placement (mirrors the `alloc.first_fit.probes` counter).
    pub probes: u64,
    /// Gaps below the chosen offset, each with its rejection reason.
    pub rejected: Vec<RejectedGap>,
    /// The chosen address.
    pub offset: u64,
    /// Words in `[0, offset)` not covered by any conflicting placed
    /// buffer: the pool waste attributable to this single decision.
    pub fragmentation: u64,
}

/// Which allocator produced a [`ProvenanceLog`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecisionEngine {
    /// The first-fit heuristic (§9, Fig. 19) in a given order/policy.
    FirstFit {
        /// Enumeration order used.
        order: AllocationOrder,
        /// Placement policy used.
        policy: PlacementPolicy,
    },
    /// The exact branch-and-bound solver, replayed in its search order.
    Optimal,
}

impl DecisionEngine {
    /// Short machine-readable label (`ffdur`, `ffstart`, `insertion` or
    /// `optimal`) matching the CLI's `--order` vocabulary.
    pub fn as_str(self) -> &'static str {
        match self {
            DecisionEngine::FirstFit { order, .. } => order.as_str(),
            DecisionEngine::Optimal => "optimal",
        }
    }
}

/// The full decision ledger of one allocation run.
#[derive(Clone, Debug)]
pub struct ProvenanceLog {
    /// Which allocator made the decisions.
    pub engine: DecisionEngine,
    /// One decision per buffer, in placement order.
    pub decisions: Vec<PlacementDecision>,
}

impl ProvenanceLog {
    /// An empty log for the given engine.
    pub fn new(engine: DecisionEngine) -> Self {
        ProvenanceLog {
            engine,
            decisions: Vec::new(),
        }
    }

    /// Sum of per-decision fragmentation attributions.  Equals the
    /// `alloc.fragmentation_words` gauge the same run would record.
    pub fn fragmentation_words(&self) -> u64 {
        self.decisions.iter().map(|d| d.fragmentation).sum()
    }

    /// Sum of per-decision probe counts.
    pub fn probe_total(&self) -> u64 {
        self.decisions.iter().map(|d| d.probes).sum()
    }

    /// The decision that placed WIG buffer `buffer`, if it was placed.
    pub fn decision_for(&self, buffer: usize) -> Option<&PlacementDecision> {
        self.decisions.iter().find(|d| d.buffer == buffer)
    }
}

/// Coalesces sorted, possibly-overlapping occupied ranges in place so a
/// fit scan sees each free gap exactly once.  Returns the number of
/// merges performed (the `alloc.first_fit.range_merges` quantity).
pub(crate) fn coalesce_ranges(ranges: &mut Vec<(u64, u64)>) -> u64 {
    let mut merges = 0u64;
    if !ranges.is_empty() {
        let mut write = 0;
        for r in 1..ranges.len() {
            if ranges[r].0 <= ranges[write].1 {
                ranges[write].1 = ranges[write].1.max(ranges[r].1);
                merges += 1;
            } else {
                write += 1;
                ranges[write] = ranges[r];
            }
        }
        ranges.truncate(write + 1);
    }
    merges
}

/// Derives the audit record of one placement.
///
/// `ranges` are the coalesced occupied address ranges of the buffer's
/// already-placed conflicting neighbours (sorted, non-overlapping),
/// `offset` the address the allocator chose and `size` the buffer size.
/// Returns the gaps entirely below `offset` (each with its rejection
/// reason) and the fragmentation words attributed to the decision: every
/// word in `[0, offset)` not covered by a conflicting range — the exact
/// quantity the first-fit tracer accumulates into
/// `alloc.fragmentation_words`.  The heuristic allocators always pick
/// offsets at gap boundaries, so for them the attribution equals the
/// summed length of the rejected gaps; the exact solver's replay can land
/// mid-gap, in which case the skipped head of the chosen gap is counted
/// in the attribution without appearing as a rejected gap.
pub(crate) fn describe_placement(
    ranges: &[(u64, u64)],
    offset: u64,
    size: u64,
) -> (Vec<RejectedGap>, u64) {
    let mut rejected = Vec::new();
    let mut covered = 0u64;
    let mut cursor = 0u64;
    for &(start, end) in ranges {
        if start > cursor && cursor < offset && start <= offset {
            // A free gap [cursor, start) entirely below the chosen offset:
            // the allocator considered it and moved on.
            let length = start - cursor;
            let reason = if length < size {
                GapRejection::TooSmall {
                    shortfall: size - length,
                }
            } else {
                GapRejection::PolicySkip {
                    waste: length - size,
                }
            };
            rejected.push(RejectedGap {
                start: cursor,
                end: start,
                reason,
            });
        }
        let clamped_start = start.min(offset).max(cursor);
        let clamped_end = end.min(offset).max(cursor);
        covered += clamped_end - clamped_start;
        cursor = cursor.max(end);
    }
    (rejected, offset - covered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_ranges_no_rejections() {
        let (rejected, frag) = describe_placement(&[], 0, 5);
        assert!(rejected.is_empty());
        assert_eq!(frag, 0);
    }

    #[test]
    fn too_small_gap_is_attributed() {
        // Occupied [0,2) and [10,14); size 9 skips the gap [2,10).
        let (rejected, frag) = describe_placement(&[(0, 2), (10, 14)], 14, 9);
        assert_eq!(rejected.len(), 1);
        assert_eq!(rejected[0].start, 2);
        assert_eq!(rejected[0].end, 10);
        assert_eq!(rejected[0].reason, GapRejection::TooSmall { shortfall: 1 });
        assert_eq!(frag, 8);
    }

    #[test]
    fn feasible_gap_below_offset_is_policy_skip() {
        // Best-fit placed a size-3 block at 12 even though [2,10) fits.
        let (rejected, frag) = describe_placement(&[(0, 2), (10, 12), (15, 20)], 12, 3);
        assert_eq!(rejected.len(), 1);
        assert_eq!(rejected[0].reason, GapRejection::PolicySkip { waste: 5 });
        assert_eq!(frag, 8);
    }

    #[test]
    fn gaps_at_or_above_offset_are_ignored() {
        let (rejected, frag) = describe_placement(&[(0, 4)], 4, 2);
        assert!(rejected.is_empty());
        assert_eq!(frag, 0);
    }
}
