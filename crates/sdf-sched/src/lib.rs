//! Single appearance schedule construction for SDF graphs.
//!
//! This crate implements the scheduling half of the DATE 2000 lifetime-
//! analysis paper:
//!
//! * [`apgan`](crate::apgan::apgan) and [`rpmc`](crate::rpmc::rpmc) — the
//!   two topological-sort heuristics of §7;
//! * [`dppo`](crate::dppo::dppo) — the non-shared loop-hierarchy DP
//!   (Eqs. 2–4), the paper's baseline;
//! * [`sdppo`](crate::sdppo::sdppo) — the shared-buffer heuristic DP
//!   (Eq. 5) with the §5.1 factoring rule;
//! * [`chain_precise`](crate::chain_precise::chain_precise) — the exact
//!   triple-cost DP of §6 for chain-structured graphs;
//! * [`random_topological_sort`](crate::topsort::random_topological_sort)
//!   and [`demand_driven_schedule`](crate::demand::demand_driven_schedule)
//!   — the baselines of §10.1 and §11.1.3.
//!
//! # Examples
//!
//! The full non-shared vs shared comparison on one graph:
//!
//! ```
//! use sdf_core::{SdfGraph, RepetitionsVector};
//! use sdf_sched::{apgan::apgan, dppo::dppo, sdppo::sdppo};
//!
//! # fn main() -> Result<(), sdf_core::SdfError> {
//! let mut g = SdfGraph::new("demo");
//! let a = g.add_actor("A");
//! let b = g.add_actor("B");
//! let c = g.add_actor("C");
//! g.add_edge(a, b, 20, 10)?;
//! g.add_edge(b, c, 20, 10)?;
//! let q = RepetitionsVector::compute(&g)?;
//! let order = apgan(&g, &q)?;
//! let nonshared = dppo(&g, &q, &order)?;
//! let shared = sdppo(&g, &q, &order)?;
//! assert!(shared.shared_cost <= nonshared.bufmem);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod apgan;
pub mod chain;
pub mod chain_precise;
pub mod cycles;
pub mod demand;
pub mod dppo;
pub mod dpwin;
pub mod exhaustive;
pub mod local_search;
pub mod loopify;
pub mod memo;
pub mod rpmc;
pub mod sdppo;
pub mod topsort;
pub mod treebuild;
pub mod variant;

pub use apgan::apgan;
pub use chain::ChainTables;
pub use chain_precise::{chain_precise, ChainPreciseResult, CostTriple};
pub use demand::demand_driven_schedule;
pub use dppo::{dppo, dppo_from_tables, dppo_from_tables_memo, dppo_with_mode, DppoResult};
pub use dpwin::DpMode;
pub use memo::{MemoEntry, MemoKey, MemoStats, MemoStore};
pub use rpmc::rpmc;
pub use sdppo::{
    sdppo, sdppo_from_tables, sdppo_from_tables_memo, sdppo_with_policy, FactoringPolicy,
    SdppoResult,
};
pub use topsort::random_topological_sort;
pub use variant::{
    schedule_variant, schedule_variant_from_tables, schedule_variant_from_tables_memo, LoopVariant,
    ScheduledVariant,
};
