//! Exhaustive search over all single appearance schedules of small
//! graphs.
//!
//! §7 notes the class of SASs of a delayless acyclic graph is exactly
//! {topological sorts} × {loop hierarchies}.  DPPO is *order-optimal*, so
//! minimising DPPO's result over **every** topological sort yields the
//! globally buffer-optimal SAS — feasible only for small graphs (the
//! general problem is NP-complete), but invaluable as ground truth for
//! measuring how close APGAN and RPMC get.

use sdf_core::error::SdfError;
use sdf_core::graph::{ActorId, SdfGraph};
use sdf_core::repetitions::RepetitionsVector;
use sdf_core::schedule::SasTree;

use crate::dppo::dppo;
use crate::sdppo::sdppo;

/// Search limits for the exhaustive enumeration.
#[derive(Clone, Copy, Debug)]
pub struct ExhaustiveLimits {
    /// Abort if more than this many topological sorts are visited.
    pub max_orders: u64,
}

impl Default for ExhaustiveLimits {
    fn default() -> Self {
        ExhaustiveLimits {
            max_orders: 100_000,
        }
    }
}

/// The result of an exhaustive search.
#[derive(Clone, Debug)]
pub struct ExhaustiveResult {
    /// The best schedule found.
    pub tree: SasTree,
    /// Its cost (non-shared `bufmem` or Eq. 5 shared cost, depending on
    /// the entry point).
    pub cost: u64,
    /// Topological sorts examined.
    pub orders_examined: u64,
}

/// Enumerates every topological sort, invoking `visit` on each.
/// Returns the number of sorts visited, or `None` if the limit tripped.
fn for_each_topological_sort(
    graph: &SdfGraph,
    limit: u64,
    visit: &mut impl FnMut(&[ActorId]),
) -> Option<u64> {
    let n = graph.actor_count();
    let mut indegree: Vec<usize> = vec![0; n];
    for (_, e) in graph.edges() {
        indegree[e.snk.index()] += 1;
    }
    let mut order: Vec<ActorId> = Vec::with_capacity(n);
    let mut count = 0u64;

    fn recurse(
        graph: &SdfGraph,
        indegree: &mut [usize],
        order: &mut Vec<ActorId>,
        count: &mut u64,
        limit: u64,
        visit: &mut impl FnMut(&[ActorId]),
    ) -> bool {
        let n = graph.actor_count();
        if order.len() == n {
            *count += 1;
            visit(order);
            return *count < limit;
        }
        for a in graph.actors() {
            if indegree[a.index()] != 0 || order.contains(&a) {
                continue;
            }
            order.push(a);
            for &e in graph.out_edges(a) {
                indegree[graph.edge(e).snk.index()] -= 1;
            }
            let keep_going = recurse(graph, indegree, order, count, limit, visit);
            for &e in graph.out_edges(a) {
                indegree[graph.edge(e).snk.index()] += 1;
            }
            order.pop();
            if !keep_going {
                return false;
            }
        }
        true
    }

    let completed = recurse(graph, &mut indegree, &mut order, &mut count, limit, visit);
    completed.then_some(count)
}

/// Finds the globally buffer-optimal SAS under the **non-shared** model by
/// exhausting all topological sorts and applying (order-optimal) DPPO to
/// each.
///
/// # Errors
///
/// * [`SdfError::Cyclic`] for cyclic graphs (no topological sort exists).
/// * [`SdfError::InvalidSchedule`] if the order limit trips before the
///   enumeration completes.
pub fn optimal_sas_nonshared(
    graph: &SdfGraph,
    q: &RepetitionsVector,
    limits: ExhaustiveLimits,
) -> Result<ExhaustiveResult, SdfError> {
    if !graph.is_acyclic() {
        return Err(SdfError::Cyclic);
    }
    let mut best: Option<(u64, SasTree)> = None;
    let visited = for_each_topological_sort(graph, limits.max_orders, &mut |order| {
        let r = dppo(graph, q, order).expect("topological order is valid");
        if best.as_ref().is_none_or(|(c, _)| r.bufmem < *c) {
            best = Some((r.bufmem, r.tree));
        }
    })
    .ok_or_else(|| {
        SdfError::InvalidSchedule(format!(
            "more than {} topological sorts; exhaustive search aborted",
            limits.max_orders
        ))
    })?;
    let (cost, tree) = best.expect("acyclic nonempty graph has a topological sort");
    Ok(ExhaustiveResult {
        tree,
        cost,
        orders_examined: visited,
    })
}

/// Minimises the Eq. 5 **shared** cost over all topological sorts (SDPPO
/// applied to each; still heuristic within one order, but exhaustive over
/// orders).
///
/// # Errors
///
/// Same as [`optimal_sas_nonshared`].
pub fn best_sas_shared(
    graph: &SdfGraph,
    q: &RepetitionsVector,
    limits: ExhaustiveLimits,
) -> Result<ExhaustiveResult, SdfError> {
    if !graph.is_acyclic() {
        return Err(SdfError::Cyclic);
    }
    let mut best: Option<(u64, SasTree)> = None;
    let visited = for_each_topological_sort(graph, limits.max_orders, &mut |order| {
        let r = sdppo(graph, q, order).expect("topological order is valid");
        if best.as_ref().is_none_or(|(c, _)| r.shared_cost < *c) {
            best = Some((r.shared_cost, r.tree));
        }
    })
    .ok_or_else(|| {
        SdfError::InvalidSchedule(format!(
            "more than {} topological sorts; exhaustive search aborted",
            limits.max_orders
        ))
    })?;
    let (cost, tree) = best.expect("acyclic nonempty graph has a topological sort");
    Ok(ExhaustiveResult {
        tree,
        cost,
        orders_examined: visited,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apgan::apgan;
    use crate::rpmc::rpmc;

    fn diamond() -> (SdfGraph, RepetitionsVector) {
        let mut g = SdfGraph::new("diamond");
        let s = g.add_actor("S");
        let x = g.add_actor("X");
        let y = g.add_actor("Y");
        let t = g.add_actor("T");
        g.add_edge(s, x, 2, 1).unwrap();
        g.add_edge(s, y, 3, 1).unwrap();
        g.add_edge(x, t, 1, 2).unwrap();
        g.add_edge(y, t, 1, 3).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        (g, q)
    }

    #[test]
    fn enumerates_all_orders_of_diamond() {
        let (g, q) = diamond();
        let r = optimal_sas_nonshared(&g, &q, ExhaustiveLimits::default()).unwrap();
        assert_eq!(r.orders_examined, 2); // S {X,Y} T
        r.tree.validate(&g, &q).unwrap();
    }

    #[test]
    fn heuristics_never_beat_exhaustive() {
        let (g, q) = diamond();
        let exhaustive = optimal_sas_nonshared(&g, &q, ExhaustiveLimits::default()).unwrap();
        for order in [apgan(&g, &q).unwrap(), rpmc(&g, &q).unwrap()] {
            let h = dppo(&g, &q, &order).unwrap();
            assert!(h.bufmem >= exhaustive.cost);
        }
    }

    #[test]
    fn chain_has_single_order() {
        let mut g = SdfGraph::new("chain");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge(a, b, 2, 3).unwrap();
        g.add_edge(b, c, 1, 2).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let r = optimal_sas_nonshared(&g, &q, ExhaustiveLimits::default()).unwrap();
        assert_eq!(r.orders_examined, 1);
        // Must equal DPPO on the unique order.
        let dp = dppo(&g, &q, &[a, b, c]).unwrap();
        assert_eq!(r.cost, dp.bufmem);
    }

    #[test]
    fn limit_trips_on_wide_graphs() {
        // An antichain of 9 actors fed by one source: 9! = 362880 orders.
        let mut g = SdfGraph::new("wide");
        let s = g.add_actor("S");
        for i in 0..9 {
            let x = g.add_actor(format!("x{i}"));
            g.add_edge(s, x, 1, 1).unwrap();
        }
        let q = RepetitionsVector::compute(&g).unwrap();
        let err = optimal_sas_nonshared(&g, &q, ExhaustiveLimits { max_orders: 1000 }).unwrap_err();
        assert!(matches!(err, SdfError::InvalidSchedule(_)));
    }

    #[test]
    fn shared_variant_runs() {
        let (g, q) = diamond();
        let r = best_sas_shared(&g, &q, ExhaustiveLimits::default()).unwrap();
        r.tree.validate(&g, &q).unwrap();
        assert!(r.cost > 0);
    }

    #[test]
    fn cyclic_rejected() {
        let mut g = SdfGraph::new("cyc");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge(a, b, 1, 1).unwrap();
        g.add_edge(b, a, 1, 1).unwrap();
        let q_fake = {
            let mut g2 = SdfGraph::new("one");
            g2.add_actor("A");
            g2.add_actor("B");
            RepetitionsVector::compute(&g2).unwrap()
        };
        assert_eq!(
            optimal_sas_nonshared(&g, &q_fake, ExhaustiveLimits::default()).err(),
            Some(SdfError::Cyclic)
        );
    }
}
