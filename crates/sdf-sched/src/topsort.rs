//! Random topological sorts — the unintelligent baseline of §10.1.
//!
//! The paper compares APGAN/RPMC against the best schedule found over many
//! uniformly sampled topological sorts; this module provides the sampler.

use rand::Rng;
use sdf_core::error::SdfError;
use sdf_core::graph::{ActorId, SdfGraph};

/// Samples a topological sort of `graph`, choosing uniformly from the ready
/// set at each step.
///
/// # Errors
///
/// * [`SdfError::EmptyGraph`] if the graph has no actors.
/// * [`SdfError::Cyclic`] if the graph has a directed cycle.
///
/// # Examples
///
/// ```
/// use sdf_core::SdfGraph;
/// use sdf_sched::topsort::random_topological_sort;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), sdf_core::SdfError> {
/// let mut g = SdfGraph::new("fork");
/// let s = g.add_actor("S");
/// let x = g.add_actor("X");
/// let y = g.add_actor("Y");
/// g.add_edge(s, x, 1, 1)?;
/// g.add_edge(s, y, 1, 1)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let order = random_topological_sort(&g, &mut rng)?;
/// assert_eq!(order[0], s);
/// # Ok(())
/// # }
/// ```
pub fn random_topological_sort<R: Rng + ?Sized>(
    graph: &SdfGraph,
    rng: &mut R,
) -> Result<Vec<ActorId>, SdfError> {
    let n = graph.actor_count();
    if n == 0 {
        return Err(SdfError::EmptyGraph);
    }
    let mut indegree = vec![0usize; n];
    for (_, e) in graph.edges() {
        indegree[e.snk.index()] += 1;
    }
    let mut ready: Vec<ActorId> = graph
        .actors()
        .filter(|a| indegree[a.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    while !ready.is_empty() {
        let pick = rng.gen_range(0..ready.len());
        let a = ready.swap_remove(pick);
        order.push(a);
        for &e in graph.out_edges(a) {
            let t = graph.edge(e).snk;
            indegree[t.index()] -= 1;
            if indegree[t.index()] == 0 {
                ready.push(t);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        Err(SdfError::Cyclic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn diamond() -> SdfGraph {
        let mut g = SdfGraph::new("diamond");
        let s = g.add_actor("S");
        let x = g.add_actor("X");
        let y = g.add_actor("Y");
        let t = g.add_actor("T");
        g.add_edge(s, x, 1, 1).unwrap();
        g.add_edge(s, y, 1, 1).unwrap();
        g.add_edge(x, t, 1, 1).unwrap();
        g.add_edge(y, t, 1, 1).unwrap();
        g
    }

    #[test]
    fn always_topological() {
        let g = diamond();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let order = random_topological_sort(&g, &mut rng).unwrap();
            let pos: std::collections::HashMap<_, _> =
                order.iter().enumerate().map(|(i, &a)| (a, i)).collect();
            assert!(g.edges().all(|(_, e)| pos[&e.src] < pos[&e.snk]));
        }
    }

    #[test]
    fn explores_both_middle_orders() {
        let g = diamond();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let order = random_topological_sort(&g, &mut rng).unwrap();
            seen.insert(order);
        }
        assert_eq!(seen.len(), 2, "diamond has exactly two topological sorts");
    }

    #[test]
    fn cycle_detected() {
        let mut g = SdfGraph::new("cyc");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge(a, b, 1, 1).unwrap();
        g.add_edge(b, a, 1, 1).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert_eq!(random_topological_sort(&g, &mut rng), Err(SdfError::Cyclic));
    }

    #[test]
    fn empty_rejected() {
        let g = SdfGraph::new("e");
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert_eq!(
            random_topological_sort(&g, &mut rng),
            Err(SdfError::EmptyGraph)
        );
    }
}
