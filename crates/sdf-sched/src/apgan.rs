//! APGAN: Acyclic Pairwise Grouping of Adjacent Nodes (§7, from \[3\]).
//!
//! APGAN builds a lexical ordering bottom-up by repeatedly clustering the
//! adjacent pair of (super)nodes with the largest repetition-count gcd
//! `ρ(u, v) = gcd(q(u), q(v))`, subject to the merge not introducing a cycle
//! in the clustered graph.  Heavily-communicating actors therefore end up
//! deepest in the loop hierarchy.  The cluster tree's in-order traversal is
//! the generated topological sort, which DPPO/SDPPO then re-parenthesise.

use sdf_core::error::SdfError;
use sdf_core::graph::{ActorId, SdfGraph};
use sdf_core::math::gcd;
use sdf_core::repetitions::RepetitionsVector;

/// Runs APGAN and returns the generated lexical ordering (a topological
/// sort of `graph`).
///
/// # Errors
///
/// * [`SdfError::EmptyGraph`] if the graph has no actors.
/// * [`SdfError::Cyclic`] if the graph has a directed cycle (APGAN here
///   targets acyclic graphs, matching the paper's flow).
///
/// # Examples
///
/// ```
/// use sdf_core::{SdfGraph, RepetitionsVector};
/// use sdf_sched::apgan::apgan;
///
/// # fn main() -> Result<(), sdf_core::SdfError> {
/// let mut g = SdfGraph::new("fig2");
/// let a = g.add_actor("A");
/// let b = g.add_actor("B");
/// let c = g.add_actor("C");
/// g.add_edge(a, b, 20, 10)?;
/// g.add_edge(b, c, 20, 10)?;
/// let q = RepetitionsVector::compute(&g)?;
/// assert_eq!(apgan(&g, &q)?, vec![a, b, c]);
/// # Ok(())
/// # }
/// ```
pub fn apgan(graph: &SdfGraph, q: &RepetitionsVector) -> Result<Vec<ActorId>, SdfError> {
    let n = graph.actor_count();
    if n == 0 {
        return Err(SdfError::EmptyGraph);
    }
    if !graph.is_acyclic() {
        return Err(SdfError::Cyclic);
    }
    let _span = sdf_trace::span!("sched.apgan", actors = n);

    let mut state = ClusterState::new(graph, q);
    while state.active.len() > 1 {
        if !state.merge_best_adjacent(graph) {
            // No adjacent pair can merge without a cycle (or no edges remain
            // between clusters, e.g. disconnected graphs): merge two
            // clusters that are consecutive in a topological order of the
            // cluster DAG — always legal, since anything strictly between
            // them would appear between them in every topological order.
            state.merge_topological_fallback(graph);
        }
    }
    if sdf_trace::enabled() {
        // The loop performs exactly n - 1 merges to reach one cluster.
        sdf_trace::counter_inc("sched.apgan.runs");
        sdf_trace::counter_add("sched.apgan.merges", n as u64 - 1);
    }
    Ok(state.lexical_order(state.active[0]))
}

/// A node of the cluster hierarchy.
enum ClusterNode {
    Leaf(ActorId),
    Merge(usize, usize),
}

struct ClusterState {
    nodes: Vec<ClusterNode>,
    /// Current root cluster of each actor.
    cluster_of: Vec<usize>,
    /// gcd of member repetition counts per cluster node.
    rep_gcd: Vec<u64>,
    /// Root clusters still alive.
    active: Vec<usize>,
}

impl ClusterState {
    fn new(graph: &SdfGraph, q: &RepetitionsVector) -> Self {
        let n = graph.actor_count();
        ClusterState {
            nodes: graph.actors().map(ClusterNode::Leaf).collect(),
            cluster_of: (0..n).collect(),
            rep_gcd: graph.actors().map(|a| q.get(a)).collect(),
            active: (0..n).collect(),
        }
    }

    /// Directed deduplicated cluster-level adjacency as (src, snk) pairs.
    fn cluster_edges(&self, graph: &SdfGraph) -> Vec<(usize, usize)> {
        let mut edges: Vec<(usize, usize)> = graph
            .edges()
            .map(|(_, e)| {
                (
                    self.cluster_of[e.src.index()],
                    self.cluster_of[e.snk.index()],
                )
            })
            .filter(|(u, v)| u != v)
            .collect();
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    /// Attempts the highest-ρ legal merge; returns false if none is legal.
    fn merge_best_adjacent(&mut self, graph: &SdfGraph) -> bool {
        let edges = self.cluster_edges(graph);
        if edges.is_empty() {
            return false;
        }
        // Candidates sorted by descending ρ, then by ids for determinism.
        let mut candidates: Vec<(u64, usize, usize)> = edges
            .iter()
            .map(|&(u, v)| (gcd(self.rep_gcd[u], self.rep_gcd[v]), u, v))
            .collect();
        candidates.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        for &(_, u, v) in &candidates {
            if !self.merge_creates_cycle(&edges, u, v) {
                self.merge(u, v);
                return true;
            }
        }
        false
    }

    /// Merging (u, v) with an edge u -> v creates a cycle iff some other
    /// successor of u still reaches v.
    fn merge_creates_cycle(&self, edges: &[(usize, usize)], u: usize, v: usize) -> bool {
        let succ = |c: usize| edges.iter().filter(move |&&(s, _)| s == c).map(|&(_, t)| t);
        let mut stack: Vec<usize> = succ(u).filter(|&s| s != v).collect();
        let mut seen = std::collections::HashSet::new();
        while let Some(c) = stack.pop() {
            if c == v {
                return true;
            }
            if seen.insert(c) {
                stack.extend(succ(c));
            }
        }
        false
    }

    /// Merges two clusters that are consecutive in a topological order of
    /// the cluster DAG.
    fn merge_topological_fallback(&mut self, graph: &SdfGraph) {
        let edges = self.cluster_edges(graph);
        let order = topo_order_of(&self.active, &edges);
        self.merge(order[0], order[1]);
    }

    fn merge(&mut self, u: usize, v: usize) {
        let id = self.nodes.len();
        self.nodes.push(ClusterNode::Merge(u, v));
        self.rep_gcd.push(gcd(self.rep_gcd[u], self.rep_gcd[v]));
        for c in self.cluster_of.iter_mut() {
            if *c == u || *c == v {
                *c = id;
            }
        }
        self.active.retain(|&c| c != u && c != v);
        self.active.push(id);
    }

    fn lexical_order(&self, root: usize) -> Vec<ActorId> {
        let mut order = Vec::new();
        let mut stack = vec![root];
        while let Some(c) = stack.pop() {
            match self.nodes[c] {
                ClusterNode::Leaf(a) => order.push(a),
                ClusterNode::Merge(l, r) => {
                    // Right pushed first so left is visited first.
                    stack.push(r);
                    stack.push(l);
                }
            }
        }
        order
    }
}

/// Topological order of the given cluster ids under `edges` (Kahn,
/// smallest-id-first for determinism).
fn topo_order_of(active: &[usize], edges: &[(usize, usize)]) -> Vec<usize> {
    let mut indegree: std::collections::HashMap<usize, usize> =
        active.iter().map(|&c| (c, 0)).collect();
    for &(_, t) in edges {
        *indegree.get_mut(&t).expect("edge endpoint must be active") += 1;
    }
    let mut ready: Vec<usize> = active
        .iter()
        .copied()
        .filter(|c| indegree[c] == 0)
        .collect();
    ready.sort_unstable_by(|a, b| b.cmp(a));
    let mut order = Vec::with_capacity(active.len());
    while let Some(c) = ready.pop() {
        order.push(c);
        for &(s, t) in edges {
            if s == c {
                let d = indegree.get_mut(&t).expect("active");
                *d -= 1;
                if *d == 0 {
                    let pos = ready.partition_point(|&x| x > t);
                    ready.insert(pos, t);
                }
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order_is_topological(graph: &SdfGraph, order: &[ActorId]) -> bool {
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &a)| (a, i)).collect();
        graph.edges().all(|(_, e)| pos[&e.src] < pos[&e.snk]) && order.len() == graph.actor_count()
    }

    #[test]
    fn chain_order_preserved() {
        let mut g = SdfGraph::new("chain");
        let ids: Vec<_> = (0..5).map(|i| g.add_actor(format!("n{i}"))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], 2, 3).unwrap();
        }
        let q = RepetitionsVector::compute(&g).unwrap();
        let order = apgan(&g, &q).unwrap();
        assert_eq!(order, ids);
    }

    #[test]
    fn clusters_high_gcd_pairs_first() {
        // S feeds X (rate 1) and Y (rate 8); X -> T, Y -> T.
        // q(S)=8? Set rates so q = (8, 8, 1, 8): X pairs with S at rho 8,
        // Y at rho 1.
        let mut g = SdfGraph::new("star");
        let s = g.add_actor("S");
        let x = g.add_actor("X");
        let y = g.add_actor("Y");
        let t = g.add_actor("T");
        g.add_edge(s, x, 1, 1).unwrap(); // q(x) = q(s)
        g.add_edge(s, y, 1, 8).unwrap(); // q(y) = q(s)/8
        g.add_edge(x, t, 1, 1).unwrap();
        g.add_edge(y, t, 8, 1).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        assert_eq!(q.as_slice(), &[8, 8, 1, 8]);
        let order = apgan(&g, &q).unwrap();
        assert!(order_is_topological(&g, &order));
    }

    #[test]
    fn produces_topological_order_on_diamond() {
        let mut g = SdfGraph::new("diamond");
        let s = g.add_actor("S");
        let x = g.add_actor("X");
        let y = g.add_actor("Y");
        let t = g.add_actor("T");
        g.add_edge(s, x, 2, 1).unwrap();
        g.add_edge(s, y, 3, 1).unwrap();
        g.add_edge(x, t, 1, 2).unwrap();
        g.add_edge(y, t, 1, 3).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let order = apgan(&g, &q).unwrap();
        assert!(order_is_topological(&g, &order));
    }

    #[test]
    fn cycle_avoidance_during_clustering() {
        // A -> B, A -> C, B -> C: clustering (A, C) first would create a
        // cycle with B; APGAN must avoid it and still finish.
        let mut g = SdfGraph::new("tri");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        // Make rho(A, C) the largest.
        g.add_edge(a, b, 1, 7).unwrap(); // q(b) = q(a)/7
        g.add_edge(a, c, 1, 1).unwrap(); // q(c) = q(a)
        g.add_edge(b, c, 7, 1).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        assert_eq!(q.as_slice(), &[7, 1, 7]);
        let order = apgan(&g, &q).unwrap();
        assert!(order_is_topological(&g, &order));
        assert_eq!(order, vec![a, b, c]); // only topological order of this DAG
    }

    #[test]
    fn disconnected_graph_completes() {
        let mut g = SdfGraph::new("disc");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge(a, b, 4, 2).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let order = apgan(&g, &q).unwrap();
        assert_eq!(order.len(), 3);
        assert!(order.contains(&c));
        assert!(order_is_topological(&g, &order));
    }

    #[test]
    fn single_actor() {
        let mut g = SdfGraph::new("one");
        let a = g.add_actor("A");
        let q = RepetitionsVector::compute(&g).unwrap();
        assert_eq!(apgan(&g, &q).unwrap(), vec![a]);
    }

    #[test]
    fn cyclic_graph_rejected() {
        let mut g = SdfGraph::new("cyc");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge(a, b, 1, 1).unwrap();
        g.add_edge_with_delay(b, a, 1, 1, 1).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        assert_eq!(apgan(&g, &q), Err(SdfError::Cyclic));
    }
}
