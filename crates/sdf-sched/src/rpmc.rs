//! RPMC: Recursive Partitioning by Minimum Cuts (§7, from \[3\]).
//!
//! RPMC builds a lexical ordering top-down: it cuts the graph into a left
//! and right part such that every crossing edge points left-to-right (a
//! *legal* cut, so each half can be scheduled without deadlock), choosing
//! the cut that minimises the memory cost of the crossing buffers, then
//! recurses on both halves.  Minimising the crossing cost is exactly the
//! right instinct under the shared model too: crossing buffers are the ones
//! that cannot be overlaid (§7).
//!
//! The cut is chosen from the topological prefix cuts (cheapest first,
//! balanced on ties) and refined by greedy legality-preserving node moves.

use sdf_core::error::SdfError;
use sdf_core::graph::{ActorId, SdfGraph};
use sdf_core::repetitions::RepetitionsVector;

/// Runs RPMC and returns the generated lexical ordering (a topological sort
/// of `graph`).
///
/// # Errors
///
/// * [`SdfError::EmptyGraph`] if the graph has no actors.
/// * [`SdfError::Cyclic`] if the graph has a directed cycle.
///
/// # Examples
///
/// ```
/// use sdf_core::{SdfGraph, RepetitionsVector};
/// use sdf_sched::rpmc::rpmc;
///
/// # fn main() -> Result<(), sdf_core::SdfError> {
/// let mut g = SdfGraph::new("fig2");
/// let a = g.add_actor("A");
/// let b = g.add_actor("B");
/// let c = g.add_actor("C");
/// g.add_edge(a, b, 20, 10)?;
/// g.add_edge(b, c, 20, 10)?;
/// let q = RepetitionsVector::compute(&g)?;
/// assert_eq!(rpmc(&g, &q)?, vec![a, b, c]);
/// # Ok(())
/// # }
/// ```
pub fn rpmc(graph: &SdfGraph, q: &RepetitionsVector) -> Result<Vec<ActorId>, SdfError> {
    if graph.actor_count() == 0 {
        return Err(SdfError::EmptyGraph);
    }
    let _span = sdf_trace::span!("sched.rpmc", actors = graph.actor_count());
    let all = graph.topological_sort()?;
    let mut order = Vec::with_capacity(all.len());
    partition(graph, q, all, &mut order);
    sdf_trace::counter_inc("sched.rpmc.runs");
    Ok(order)
}

/// Recursively orders `subset` (given in a topological order of the induced
/// subgraph), appending to `out`.
fn partition(
    graph: &SdfGraph,
    q: &RepetitionsVector,
    subset: Vec<ActorId>,
    out: &mut Vec<ActorId>,
) {
    let n = subset.len();
    if n <= 1 {
        out.extend(subset);
        return;
    }
    if n == 2 {
        out.extend(subset);
        return;
    }
    let (left, right) = best_cut(graph, q, &subset);
    partition(graph, q, left, out);
    partition(graph, q, right, out);
}

/// Finds a balanced legal cut of `subset` minimising crossing cost.
fn best_cut(
    graph: &SdfGraph,
    q: &RepetitionsVector,
    subset: &[ActorId],
) -> (Vec<ActorId>, Vec<ActorId>) {
    let n = subset.len();
    let in_subset = membership(graph, subset);

    // Every prefix of a topological order is a legal cut. Scan the
    // bounded window of the original formulation (each side at least a
    // third when possible), preferring balanced cuts on ties.
    let (lo, hi) = if n >= 3 {
        (n.div_ceil(3).clamp(1, n - 1), (2 * n / 3).clamp(1, n - 1))
    } else {
        (1, n - 1)
    };

    let mut side = vec![false; graph.actor_count()]; // true = left
    for &a in &subset[..lo] {
        side[a.index()] = true;
    }
    let balance = |p: usize| (2 * p).abs_diff(n);
    let mut best_p = lo;
    let mut best_key = (cut_cost(graph, q, subset, &side, &in_subset), balance(lo));
    for p in (lo + 1)..=hi {
        side[subset[p - 1].index()] = true;
        let key = (cut_cost(graph, q, subset, &side, &in_subset), balance(p));
        if key < best_key {
            best_key = key;
            best_p = p;
        }
    }
    // Reset to the winning prefix.
    for &a in subset {
        side[a.index()] = false;
    }
    for &a in &subset[..best_p] {
        side[a.index()] = true;
    }
    let mut left_size = best_p;

    // Greedy refinement: move single actors across the cut when legality
    // is preserved, both sides stay nonempty, and the cost strictly drops.
    let min_side = 1;
    let mut improved = true;
    let mut rounds = 0usize;
    while improved && rounds < 2 * n {
        improved = false;
        rounds += 1;
        let current = cut_cost(graph, q, subset, &side, &in_subset);
        for &a in subset {
            let on_left = side[a.index()];
            if on_left {
                if left_size <= min_side {
                    continue;
                }
                // Legal to move right iff all in-subset successors are right.
                let legal = graph.out_edges(a).iter().all(|&e| {
                    let s = graph.edge(e).snk;
                    !in_subset[s.index()] || !side[s.index()]
                });
                if !legal {
                    continue;
                }
                side[a.index()] = false;
                let c = cut_cost(graph, q, subset, &side, &in_subset);
                if c < current {
                    left_size -= 1;
                    improved = true;
                    break;
                }
                side[a.index()] = true;
            } else {
                if n - left_size <= min_side {
                    continue;
                }
                let legal = graph.in_edges(a).iter().all(|&e| {
                    let s = graph.edge(e).src;
                    !in_subset[s.index()] || side[s.index()]
                });
                if !legal {
                    continue;
                }
                side[a.index()] = true;
                let c = cut_cost(graph, q, subset, &side, &in_subset);
                if c < current {
                    left_size += 1;
                    improved = true;
                    break;
                }
                side[a.index()] = false;
            }
        }
    }

    // Split `subset`, preserving its (topological) relative order; that
    // order restricted to a legal side is still topological for the side.
    let mut left = Vec::with_capacity(left_size);
    let mut right = Vec::with_capacity(n - left_size);
    for &a in subset {
        if side[a.index()] {
            left.push(a);
        } else {
            right.push(a);
        }
    }
    (left, right)
}

fn membership(graph: &SdfGraph, subset: &[ActorId]) -> Vec<bool> {
    let mut m = vec![false; graph.actor_count()];
    for &a in subset {
        m[a.index()] = true;
    }
    m
}

/// Total TNSE + delay of edges crossing the cut (left -> right), restricted
/// to the subset.
fn cut_cost(
    graph: &SdfGraph,
    q: &RepetitionsVector,
    subset: &[ActorId],
    side: &[bool],
    in_subset: &[bool],
) -> u64 {
    let mut cost = 0u64;
    for &a in subset {
        if !side[a.index()] {
            continue;
        }
        for &eid in graph.out_edges(a) {
            let e = graph.edge(eid);
            if in_subset[e.snk.index()] && !side[e.snk.index()] {
                cost += q.tnse(graph, eid) + e.delay;
            }
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order_is_topological(graph: &SdfGraph, order: &[ActorId]) -> bool {
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &a)| (a, i)).collect();
        graph.edges().all(|(_, e)| pos[&e.src] < pos[&e.snk]) && order.len() == graph.actor_count()
    }

    #[test]
    fn chain_preserved() {
        let mut g = SdfGraph::new("chain");
        let ids: Vec<_> = (0..7).map(|i| g.add_actor(format!("n{i}"))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], 3, 2).unwrap();
        }
        let q = RepetitionsVector::compute(&g).unwrap();
        assert_eq!(rpmc(&g, &q).unwrap(), ids);
    }

    #[test]
    fn diamond_topological() {
        let mut g = SdfGraph::new("diamond");
        let s = g.add_actor("S");
        let x = g.add_actor("X");
        let y = g.add_actor("Y");
        let t = g.add_actor("T");
        g.add_edge(s, x, 2, 1).unwrap();
        g.add_edge(s, y, 5, 1).unwrap();
        g.add_edge(x, t, 1, 2).unwrap();
        g.add_edge(y, t, 1, 5).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let order = rpmc(&g, &q).unwrap();
        assert!(order_is_topological(&g, &order));
    }

    #[test]
    fn cut_prefers_light_edges() {
        // Heavy edge A->B (TNSE 100), light edge B->C (TNSE 1), heavy C->D:
        // with a 4-node subset the balanced window is positions {2}; the
        // cut must land on the light edge.
        let mut g = SdfGraph::new("w");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        let d = g.add_actor("D");
        g.add_edge(a, b, 100, 100).unwrap();
        g.add_edge(b, c, 1, 1).unwrap();
        g.add_edge(c, d, 100, 100).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let (left, right) = best_cut(&g, &q, &[a, b, c, d]);
        assert_eq!(left, vec![a, b]);
        assert_eq!(right, vec![c, d]);
    }

    #[test]
    fn wide_graph_topological() {
        // Two parallel chains joined at both ends.
        let mut g = SdfGraph::new("par");
        let s = g.add_actor("S");
        let chain1: Vec<_> = (0..4).map(|i| g.add_actor(format!("x{i}"))).collect();
        let chain2: Vec<_> = (0..4).map(|i| g.add_actor(format!("y{i}"))).collect();
        let t = g.add_actor("T");
        g.add_edge(s, chain1[0], 2, 1).unwrap();
        g.add_edge(s, chain2[0], 3, 1).unwrap();
        for w in chain1.windows(2) {
            g.add_edge(w[0], w[1], 1, 1).unwrap();
        }
        for w in chain2.windows(2) {
            g.add_edge(w[0], w[1], 1, 1).unwrap();
        }
        g.add_edge(*chain1.last().unwrap(), t, 1, 2).unwrap();
        g.add_edge(*chain2.last().unwrap(), t, 1, 3).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let order = rpmc(&g, &q).unwrap();
        assert!(order_is_topological(&g, &order));
    }

    #[test]
    fn cyclic_rejected() {
        let mut g = SdfGraph::new("cyc");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge(a, b, 1, 1).unwrap();
        g.add_edge_with_delay(b, a, 1, 1, 1).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        assert_eq!(rpmc(&g, &q), Err(SdfError::Cyclic));
    }

    #[test]
    fn empty_rejected() {
        let g = SdfGraph::new("e");
        // A repetitions vector cannot even be computed; synthesise one from
        // a one-actor graph to exercise the empty check directly.
        let mut g1 = SdfGraph::new("one");
        g1.add_actor("A");
        let q = RepetitionsVector::compute(&g1).unwrap();
        assert_eq!(rpmc(&g, &q), Err(SdfError::EmptyGraph));
    }

    #[test]
    fn two_actors() {
        let mut g = SdfGraph::new("two");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge(a, b, 1, 4).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        assert_eq!(rpmc(&g, &q).unwrap(), vec![a, b]);
    }

    #[test]
    fn disconnected_components_ordered() {
        let mut g = SdfGraph::new("disc");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        let d = g.add_actor("D");
        g.add_edge(a, b, 1, 1).unwrap();
        g.add_edge(c, d, 1, 1).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let order = rpmc(&g, &q).unwrap();
        assert!(order_is_topological(&g, &order));
    }
}
