//! Local search over topological orders.
//!
//! Ritz et al. (§11.1.2) pose flat-SAS memory minimisation as an integer
//! program over the choice of topological sort; this module provides the
//! practical alternative the paper's framework suggests: hill-climbing by
//! adjacent transpositions, with a caller-supplied cost function (so the
//! same search optimises the non-shared metric, the Eq. 5 estimate, a
//! full first-fit allocation, or Ritz's flat-SAS objective).

use sdf_core::graph::{ActorId, SdfGraph};

/// Result of a local search.
#[derive(Clone, Debug)]
pub struct LocalSearchResult {
    /// The best order found.
    pub order: Vec<ActorId>,
    /// Its cost.
    pub cost: u64,
    /// Cost evaluations spent.
    pub evaluations: u64,
}

/// Hill-climbs from `init` by swapping adjacent actors whenever the swap
/// keeps the order topological and strictly lowers `cost`.
///
/// Stops at a local optimum or after `max_evaluations` calls to `cost`.
/// An adjacent swap `… x y … -> … y x …` is legal iff there is no edge
/// `x -> y`.
///
/// # Examples
///
/// ```
/// use sdf_core::{SdfGraph, RepetitionsVector};
/// use sdf_sched::local_search::improve_order;
/// use sdf_sched::dppo::dppo;
///
/// # fn main() -> Result<(), sdf_core::SdfError> {
/// let mut g = SdfGraph::new("diamond");
/// let s = g.add_actor("S");
/// let x = g.add_actor("X");
/// let y = g.add_actor("Y");
/// let t = g.add_actor("T");
/// g.add_edge(s, x, 4, 1)?;
/// g.add_edge(s, y, 1, 1)?;
/// g.add_edge(x, t, 1, 4)?;
/// g.add_edge(y, t, 1, 1)?;
/// let q = RepetitionsVector::compute(&g)?;
/// let r = improve_order(&g, vec![s, x, y, t], |o| {
///     dppo(&g, &q, o).map(|d| d.bufmem).unwrap_or(u64::MAX)
/// }, 1000);
/// assert!(r.cost <= dppo(&g, &q, &[s, x, y, t])?.bufmem);
/// # Ok(())
/// # }
/// ```
pub fn improve_order(
    graph: &SdfGraph,
    init: Vec<ActorId>,
    mut cost: impl FnMut(&[ActorId]) -> u64,
    max_evaluations: u64,
) -> LocalSearchResult {
    let mut order = init;
    let mut evaluations = 1u64;
    let mut best = cost(&order);
    let n = order.len();
    let mut improved = true;
    'outer: while improved {
        improved = false;
        for i in 0..n.saturating_sub(1) {
            let (x, y) = (order[i], order[i + 1]);
            // Swap is legal iff no edge x -> y.
            let has_edge = graph.out_edges(x).iter().any(|&e| graph.edge(e).snk == y);
            if has_edge {
                continue;
            }
            order.swap(i, i + 1);
            if evaluations >= max_evaluations {
                order.swap(i, i + 1);
                break 'outer;
            }
            evaluations += 1;
            let c = cost(&order);
            if c < best {
                best = c;
                improved = true;
            } else {
                order.swap(i, i + 1);
            }
        }
    }
    LocalSearchResult {
        order,
        cost: best,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dppo::dppo;
    use sdf_core::repetitions::RepetitionsVector;

    /// Diamond where putting the heavy branch last is better.
    fn skewed_diamond() -> (SdfGraph, Vec<ActorId>, RepetitionsVector) {
        let mut g = SdfGraph::new("skew");
        let s = g.add_actor("S");
        let x = g.add_actor("X");
        let y = g.add_actor("Y");
        let t = g.add_actor("T");
        g.add_edge(s, x, 8, 1).unwrap();
        g.add_edge(s, y, 1, 1).unwrap();
        g.add_edge(x, t, 1, 8).unwrap();
        g.add_edge(y, t, 1, 1).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        (g, vec![s, x, y, t], q)
    }

    #[test]
    fn search_never_worsens() {
        let (g, init, q) = skewed_diamond();
        let base = dppo(&g, &q, &init).unwrap().bufmem;
        let r = improve_order(
            &g,
            init,
            |o| dppo(&g, &q, o).map(|d| d.bufmem).unwrap_or(u64::MAX),
            10_000,
        );
        assert!(r.cost <= base);
        // Result order is still topological.
        let pos: std::collections::HashMap<_, _> =
            r.order.iter().enumerate().map(|(i, &a)| (a, i)).collect();
        assert!(g.edges().all(|(_, e)| pos[&e.src] < pos[&e.snk]));
    }

    #[test]
    fn respects_evaluation_budget() {
        let (g, init, q) = skewed_diamond();
        let mut calls = 0u64;
        let r = improve_order(
            &g,
            init,
            |o| {
                calls += 1;
                dppo(&g, &q, o).map(|d| d.bufmem).unwrap_or(u64::MAX)
            },
            3,
        );
        assert!(calls <= 3);
        assert!(r.evaluations <= 3);
    }

    #[test]
    fn illegal_swaps_skipped() {
        // Chain: no swap is legal; order unchanged.
        let mut g = SdfGraph::new("chain");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge(a, b, 1, 1).unwrap();
        g.add_edge(b, c, 1, 1).unwrap();
        let init = vec![a, b, c];
        let r = improve_order(&g, init.clone(), |_| 7, 100);
        assert_eq!(r.order, init);
        assert_eq!(r.cost, 7);
    }
}
