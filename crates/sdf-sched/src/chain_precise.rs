//! The precise shared-buffer dynamic program for chain-structured graphs
//! (§6), using `(left, center, right)` cost triples.
//!
//! Eq. 5 over-estimates because it assumes every split-crossing buffer is
//! live simultaneously with *all* buffers of both halves.  For chains the
//! paper refines the cost to a triple: `left` is the portion of the
//! subchain's buffers that can be live together with the buffer *entering*
//! its first actor, `right` likewise for the buffer *leaving* its last
//! actor, and `center` is the cost of the subchain in isolation.
//!
//! Combining triples across a split depends on how many times each half's
//! loop iterates inside the merged loop, i.e. on
//! `m_L = g(i..k) / g(i..j)` and `m_R = g(k+1..j) / g(i..j)`, each
//! classified as 1, 2 or ≥ 3.  The paper derives cases I–III
//! (`m_R = 1`); the other six are their left/right mirror images, obtained
//! here by factoring the combination into a left contribution and a right
//! contribution (see `combine`).  Incomparable triples are kept as a
//! Pareto frontier with a configurable cap.

use sdf_core::error::SdfError;
use sdf_core::graph::SdfGraph;
use sdf_core::repetitions::RepetitionsVector;
use sdf_core::schedule::{SasNode, SasTree};

use crate::chain::ChainTables;

/// A `(left, center, right)` shared-buffer cost triple (§6).
///
/// Invariant: `center >= max(left, right)` (the paper's "l2 reflects the
/// cost by including l1").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CostTriple {
    /// Buffers that can overlap the subchain's input buffer.
    pub left: u64,
    /// The cost of the subchain in isolation.
    pub center: u64,
    /// Buffers that can overlap the subchain's output buffer.
    pub right: u64,
}

impl CostTriple {
    /// The zero triple of a single-actor subchain.
    pub const ZERO: CostTriple = CostTriple {
        left: 0,
        center: 0,
        right: 0,
    };

    /// Componentwise dominance: self is no worse in every component.
    fn dominates(&self, other: &CostTriple) -> bool {
        self.left <= other.left && self.center <= other.center && self.right <= other.right
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    t: CostTriple,
    /// Split position; `usize::MAX` marks a leaf cell.
    k: usize,
    /// Index of the contributing entry in the left child cell.
    li: usize,
    /// Index of the contributing entry in the right child cell.
    ri: usize,
}

/// Result of the precise chain DP.
#[derive(Clone, Debug)]
pub struct ChainPreciseResult {
    /// The chosen R-schedule.
    pub tree: SasTree,
    /// Its cost triple; `cost.center` is the shared-buffer estimate
    /// comparable to [`crate::sdppo::SdppoResult::shared_cost`].
    pub cost: CostTriple,
    /// The largest Pareto frontier encountered in any DP cell (diagnostic
    /// for the incomparable-tuple growth discussed in §6.1).
    pub max_frontier_seen: usize,
}

/// Default cap on incomparable triples retained per DP cell.
pub const DEFAULT_FRONTIER_CAP: usize = 8;

/// Runs the §6 precise shared-buffer DP on a chain-structured graph.
///
/// `frontier_cap` bounds the incomparable triples kept per cell (the
/// paper's suggestion for keeping the runtime polynomial); values below 1
/// are treated as 1.
///
/// # Errors
///
/// * [`SdfError::NotChainStructured`] if `graph` is not a simple directed
///   chain.
/// * [`SdfError::EmptyGraph`] for graphs with no actors.
///
/// # Examples
///
/// ```
/// use sdf_core::{SdfGraph, RepetitionsVector};
/// use sdf_sched::chain_precise::{chain_precise, DEFAULT_FRONTIER_CAP};
///
/// # fn main() -> Result<(), sdf_core::SdfError> {
/// let mut g = SdfGraph::new("fig2");
/// let a = g.add_actor("A");
/// let b = g.add_actor("B");
/// let c = g.add_actor("C");
/// g.add_edge(a, b, 20, 10)?;
/// g.add_edge(b, c, 20, 10)?;
/// let q = RepetitionsVector::compute(&g)?;
/// let r = chain_precise(&g, &q, DEFAULT_FRONTIER_CAP)?;
/// assert!(r.cost.center <= 40);
/// # Ok(())
/// # }
/// ```
pub fn chain_precise(
    graph: &SdfGraph,
    q: &RepetitionsVector,
    frontier_cap: usize,
) -> Result<ChainPreciseResult, SdfError> {
    if graph.actor_count() == 0 {
        return Err(SdfError::EmptyGraph);
    }
    let _span = sdf_trace::span!("sched.chain_precise", cap = frontier_cap);
    let order = graph.chain_order().ok_or(SdfError::NotChainStructured)?;
    let ct = ChainTables::build(graph, q, &order)?;
    let n = ct.len();
    let cap = frontier_cap.max(1);

    // cells[i][j] as a flattened upper-triangular table of frontiers.
    let mut cells: Vec<Vec<Entry>> = vec![Vec::new(); n * n];
    for i in 0..n {
        cells[i * n + i].push(Entry {
            t: CostTriple::ZERO,
            k: usize::MAX,
            li: 0,
            ri: 0,
        });
    }
    let mut max_frontier_seen = 1;

    for span in 1..n {
        for i in 0..(n - span) {
            let j = i + span;
            let g_ij = ct.gcd_range(i, j);
            let mut frontier: Vec<Entry> = Vec::new();
            for k in i..j {
                let c = ct.split_cost(i, k, j);
                let ml = ct.gcd_range(i, k) / g_ij;
                let mr = ct.gcd_range(k + 1, j) / g_ij;
                for (li, le) in cells[i * n + k].iter().enumerate() {
                    for (ri, re) in cells[(k + 1) * n + j].iter().enumerate() {
                        let t = combine(le.t, re.t, c, ml, mr);
                        insert_pareto(&mut frontier, Entry { t, k, li, ri });
                    }
                }
            }
            max_frontier_seen = max_frontier_seen.max(frontier.len());
            if frontier.len() > cap {
                frontier.sort_by_key(|e| (e.t.center, e.t.left + e.t.right));
                frontier.truncate(cap);
            }
            cells[i * n + j] = frontier;
        }
    }

    let top = &cells[n - 1]; // row 0, column n-1
    let (best_idx, best) = top
        .iter()
        .enumerate()
        .min_by_key(|(_, e)| (e.t.center, e.t.left + e.t.right))
        .expect("top cell cannot be empty");
    let tree = SasTree::new(build_node(&cells, &ct, q, 0, n - 1, best_idx, 1));
    if sdf_trace::enabled() {
        // Post-hoc over the finished table — no per-iteration counting in
        // the DP loops when tracing is off.
        sdf_trace::counter_inc("sched.chain_precise.runs");
        let triples = cells.iter().map(|c| c.len() as u64).sum::<u64>();
        sdf_trace::counter_add("sched.chain_precise.triples", triples);
        sdf_trace::gauge_set("sched.chain_precise.max_frontier", max_frontier_seen as u64);
    }
    Ok(ChainPreciseResult {
        tree,
        cost: best.t,
        max_frontier_seen,
    })
}

/// Combines child triples across a split (all nine §6.1 cases).
///
/// The combination factors into a left part and a right part:
///
/// * `m = 1`: the half runs once; its outer component passes through
///   (`t1 = l1`) and the crossing buffer overlaps only its inner-facing
///   component (`center` sees `max(l2, l3 + c)`).  This is the left half of
///   Case I.
/// * `m = 2`: the half runs twice; the crossing buffer is live across both
///   iterations, so the outer component is `max(l1 + c, l2)` and the centre
///   sees `l2 + c` (Case II / Fig. 9).
/// * `m >= 3`: a middle iteration overlaps both the crossing buffer and the
///   half's full interior: outer and centre are both `l2 + c`
///   (Case III / Fig. 10).
///
/// Mirrored for the right half; the centre is the max of both
/// contributions, clamped to preserve `center >= max(left, right)`.
fn combine(l: CostTriple, r: CostTriple, c: u64, ml: u64, mr: u64) -> CostTriple {
    let (left, via_l) = match ml {
        1 => (l.left, l.center.max(l.right + c)),
        2 => ((l.left + c).max(l.center), l.center + c),
        _ => (l.center + c, l.center + c),
    };
    let (right, via_r) = match mr {
        1 => (r.right, r.center.max(r.left + c)),
        2 => ((r.right + c).max(r.center), r.center + c),
        _ => (r.center + c, r.center + c),
    };
    let center = via_l.max(via_r).max(left).max(right);
    CostTriple {
        left,
        center,
        right,
    }
}

fn insert_pareto(frontier: &mut Vec<Entry>, e: Entry) {
    if frontier.iter().any(|f| f.t.dominates(&e.t)) {
        return;
    }
    frontier.retain(|f| !e.t.dominates(&f.t));
    frontier.push(e);
}

fn build_node(
    cells: &[Vec<Entry>],
    ct: &ChainTables,
    q: &RepetitionsVector,
    i: usize,
    j: usize,
    entry: usize,
    applied: u64,
) -> SasNode {
    let n = ct.len();
    let e = cells[i * n + j][entry];
    if i == j {
        let actor = ct.actor(i);
        return SasNode::leaf(actor, q.get(actor) / applied);
    }
    // Chains always have the internal (crossing) edge, so every merge is
    // factored (§5.1 heuristic).
    let g = ct.gcd_range(i, j);
    let count = g / applied;
    let left = build_node(cells, ct, q, i, e.k, e.li, g);
    let right = build_node(cells, ct, q, e.k + 1, j, e.ri, g);
    SasNode::branch(count, left, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sdppo::sdppo;
    use sdf_core::simulate::validate_schedule;

    fn chain(rates: &[(u64, u64)]) -> (SdfGraph, RepetitionsVector) {
        let mut g = SdfGraph::new("chain");
        let ids: Vec<_> = (0..=rates.len())
            .map(|i| g.add_actor(format!("x{i}")))
            .collect();
        for (i, &(p, c)) in rates.iter().enumerate() {
            g.add_edge(ids[i], ids[i + 1], p, c).unwrap();
        }
        let q = RepetitionsVector::compute(&g).unwrap();
        (g, q)
    }

    #[test]
    fn two_actor_chain_matches_split_cost() {
        let (g, q) = chain(&[(3, 5)]);
        let r = chain_precise(&g, &q, DEFAULT_FRONTIER_CAP).unwrap();
        assert_eq!(r.cost.center, 15);
        assert_eq!(r.cost.left, 15);
        assert_eq!(r.cost.right, 15);
        r.tree.validate(&g, &q).unwrap();
    }

    #[test]
    fn never_exceeds_eq5_estimate() {
        for rates in [
            vec![(2u64, 3u64), (1, 2)],
            vec![(4, 2), (3, 6), (2, 1)],
            vec![(1, 1), (2, 3), (2, 7), (8, 7), (5, 1)],
            vec![(5, 2), (4, 6), (9, 3)],
        ] {
            let (g, q) = chain(&rates);
            let order = g.chain_order().unwrap();
            let precise = chain_precise(&g, &q, 64).unwrap();
            let heuristic = sdppo(&g, &q, &order).unwrap();
            assert!(
                precise.cost.center <= heuristic.shared_cost,
                "precise {} > eq5 {} on {rates:?}",
                precise.cost.center,
                heuristic.shared_cost
            );
        }
    }

    #[test]
    fn produces_valid_schedules() {
        let (g, q) = chain(&[(2, 3), (2, 7), (8, 7)]);
        let r = chain_precise(&g, &q, DEFAULT_FRONTIER_CAP).unwrap();
        r.tree.validate(&g, &q).unwrap();
        validate_schedule(&g, &r.tree.to_looped_schedule(), &q).unwrap();
    }

    #[test]
    fn invariant_center_dominates_sides() {
        let (g, q) = chain(&[(4, 5), (3, 2), (7, 3)]);
        let r = chain_precise(&g, &q, DEFAULT_FRONTIER_CAP).unwrap();
        assert!(r.cost.center >= r.cost.left);
        assert!(r.cost.center >= r.cost.right);
    }

    #[test]
    fn incomparable_tuples_arise() {
        // Fig. 11's situation: different parenthesisations trade interior
        // cost against boundary cost. Rates chosen so q = (5, 4, 6).
        let (g, q) = chain(&[(4, 5), (3, 2)]);
        assert_eq!(q.as_slice(), &[5, 4, 6]);
        let r = chain_precise(&g, &q, 64).unwrap();
        assert!(r.max_frontier_seen >= 1);
        r.tree.validate(&g, &q).unwrap();
    }

    #[test]
    fn frontier_cap_respected_and_still_valid() {
        let (g, q) = chain(&[(4, 5), (3, 2), (5, 4), (2, 3)]);
        let capped = chain_precise(&g, &q, 1).unwrap();
        let wide = chain_precise(&g, &q, 64).unwrap();
        capped.tree.validate(&g, &q).unwrap();
        // A wider frontier can only improve (or tie) the chosen centre.
        assert!(wide.cost.center <= capped.cost.center);
    }

    #[test]
    fn non_chain_rejected() {
        let mut g = SdfGraph::new("fork");
        let s = g.add_actor("S");
        let x = g.add_actor("X");
        let y = g.add_actor("Y");
        g.add_edge(s, x, 1, 1).unwrap();
        g.add_edge(s, y, 1, 1).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        assert_eq!(
            chain_precise(&g, &q, DEFAULT_FRONTIER_CAP).err(),
            Some(SdfError::NotChainStructured)
        );
    }

    #[test]
    fn combine_case_one_matches_paper() {
        // Case I (m_L = m_R = 1): t2 = max(l2, l3+c, r1+c, r2).
        let l = CostTriple {
            left: 3,
            center: 10,
            right: 7,
        };
        let r = CostTriple {
            left: 6,
            center: 9,
            right: 2,
        };
        let t = combine(l, r, 4, 1, 1);
        assert_eq!(t.left, 3);
        assert_eq!(t.right, 2);
        assert_eq!(t.center, 11); // max(l2, l3+c, r1+c, r2) = max(10, 11, 10, 9)
    }

    #[test]
    fn combine_case_two_matches_paper() {
        // Case II (m_L = 2, m_R = 1): t1 = max(l1+c, l2), t2 >= max(l2+c, r1+c).
        let l = CostTriple {
            left: 3,
            center: 10,
            right: 7,
        };
        let r = CostTriple {
            left: 6,
            center: 9,
            right: 2,
        };
        let t = combine(l, r, 4, 2, 1);
        assert_eq!(t.left, 10); // max(l1+c, l2) = max(7, 10)
        assert_eq!(t.right, 2);
        assert!(t.center >= 14); // >= max(l2+c, r1+c) = max(14, 10)
    }

    #[test]
    fn combine_case_three_matches_paper() {
        // Case III (m_L >= 3): t1 = l2 + c.
        let l = CostTriple {
            left: 3,
            center: 10,
            right: 7,
        };
        let r = CostTriple {
            left: 6,
            center: 9,
            right: 2,
        };
        let t = combine(l, r, 4, 3, 1);
        assert_eq!(t.left, 10 + 4);
        assert!(t.center >= 14);
    }

    #[test]
    fn combine_mirror_symmetry() {
        // Mirroring both inputs and the m-classes mirrors the output.
        let l = CostTriple {
            left: 3,
            center: 10,
            right: 7,
        };
        let r = CostTriple {
            left: 6,
            center: 9,
            right: 2,
        };
        for (ml, mr) in [(1, 1), (2, 1), (1, 2), (3, 2), (2, 3), (3, 3)] {
            let t = combine(l, r, 4, ml, mr);
            let lm = CostTriple {
                left: r.right,
                center: r.center,
                right: r.left,
            };
            let rm = CostTriple {
                left: l.right,
                center: l.center,
                right: l.left,
            };
            let tm = combine(lm, rm, 4, mr, ml);
            assert_eq!(t.left, tm.right, "mirror failed for ({ml},{mr})");
            assert_eq!(t.center, tm.center);
            assert_eq!(t.right, tm.left);
        }
    }
}
