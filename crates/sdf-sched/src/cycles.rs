//! Scheduling consistent **cyclic** SDF graphs.
//!
//! The paper's SAS machinery targets acyclic graphs; real systems contain
//! feedback loops whose initial tokens (delays) make them executable.  The
//! standard reduction applies here: a feedback edge whose delay covers a
//! whole period of its sink's consumption (`delay(e) >= cns(e) · q(snk)`)
//! can never block any firing in a minimal period, so it imposes no
//! precedence constraint.  Removing all such *non-blocking* edges yields
//! an acyclic skeleton; if every cycle is broken this way, any SAS of the
//! skeleton is a valid schedule of the full graph.
//!
//! The buffers of removed feedback edges are still allocated — the
//! lifetime layer already treats delay-carrying edges as live for the
//! whole period, which is exactly right for feedback.

use sdf_core::error::SdfError;
use sdf_core::graph::{EdgeId, SdfGraph};
use sdf_core::repetitions::RepetitionsVector;

/// Returns true if `e` can never block within one minimal schedule period.
pub fn is_nonblocking(graph: &SdfGraph, q: &RepetitionsVector, e: EdgeId) -> bool {
    let edge = graph.edge(e);
    edge.delay >= edge.cons * q.get(edge.snk)
}

/// Splits the graph into an acyclic skeleton and the removed feedback
/// edges.
///
/// The skeleton keeps every actor (same [`sdf_core::ActorId`]s) and every
/// edge that is *not* non-blocking; returned feedback edge ids refer to
/// the **original** graph.
///
/// # Errors
///
/// Returns [`SdfError::Cyclic`] if a cycle remains after removing all
/// non-blocking edges (such graphs deadlock or need multi-period
/// analysis).
pub fn acyclic_skeleton(
    graph: &SdfGraph,
    q: &RepetitionsVector,
) -> Result<(SdfGraph, Vec<EdgeId>), SdfError> {
    let mut skeleton = SdfGraph::new(format!("{}_skeleton", graph.name()));
    for a in graph.actors() {
        skeleton.add_actor(graph.actor_name(a));
    }
    let mut feedback = Vec::new();
    for (id, e) in graph.edges() {
        if is_nonblocking(graph, q, id) {
            feedback.push(id);
        } else {
            skeleton
                .add_edge_with_delay(e.src, e.snk, e.prod, e.cons, e.delay)
                .expect("edges of a valid graph stay valid");
        }
    }
    if !skeleton.is_acyclic() {
        return Err(SdfError::Cyclic);
    }
    Ok((skeleton, feedback))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{apgan::apgan, dppo::dppo, sdppo::sdppo};
    use sdf_core::simulate::validate_schedule;

    /// A -> B with feedback B -> A carrying a full period of delay.
    fn feedback_pair() -> (SdfGraph, RepetitionsVector) {
        let mut g = SdfGraph::new("fb");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge(a, b, 2, 3).unwrap(); // q = (3, 2)
        g.add_edge_with_delay(b, a, 3, 2, 6).unwrap(); // q(A)*cons = 6
        let q = RepetitionsVector::compute(&g).unwrap();
        (g, q)
    }

    #[test]
    fn nonblocking_detection() {
        let (g, q) = feedback_pair();
        let edges: Vec<_> = g.edges().map(|(id, _)| id).collect();
        assert!(!is_nonblocking(&g, &q, edges[0]));
        assert!(is_nonblocking(&g, &q, edges[1]));
    }

    #[test]
    fn skeleton_breaks_the_cycle() {
        let (g, q) = feedback_pair();
        let (skeleton, feedback) = acyclic_skeleton(&g, &q).unwrap();
        assert!(skeleton.is_acyclic());
        assert_eq!(skeleton.edge_count(), 1);
        assert_eq!(feedback.len(), 1);
        assert_eq!(skeleton.actor_count(), g.actor_count());
    }

    #[test]
    fn skeleton_schedule_valid_on_full_graph() {
        let (g, q) = feedback_pair();
        let (skeleton, _) = acyclic_skeleton(&g, &q).unwrap();
        let order = apgan(&skeleton, &q).unwrap();
        for sas in [
            dppo(&skeleton, &q, &order).unwrap().tree,
            sdppo(&skeleton, &q, &order).unwrap().tree,
        ] {
            // Validate against the FULL graph, feedback edge included.
            validate_schedule(&g, &sas.to_looped_schedule(), &q)
                .expect("skeleton SAS must execute on the cyclic graph");
        }
    }

    #[test]
    fn insufficient_delay_rejected() {
        let mut g = SdfGraph::new("tight");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge(a, b, 1, 1).unwrap();
        g.add_edge_with_delay(b, a, 1, 1, 1).unwrap(); // needs 1, q(A)=1 -> blocking? delay 1 >= 1*1: nonblocking!
        let q = RepetitionsVector::compute(&g).unwrap();
        // delay == cons * q(snk) exactly: still nonblocking.
        let (skeleton, feedback) = acyclic_skeleton(&g, &q).unwrap();
        assert_eq!(feedback.len(), 1);
        assert!(skeleton.is_acyclic());

        // But a delay of 0 on one cycle edge cannot be broken.
        let mut g2 = SdfGraph::new("dead");
        let a2 = g2.add_actor("A");
        let b2 = g2.add_actor("B");
        g2.add_edge(a2, b2, 1, 1).unwrap();
        g2.add_edge(b2, a2, 1, 1).unwrap();
        let q2 = RepetitionsVector::compute(&g2).unwrap();
        assert_eq!(acyclic_skeleton(&g2, &q2).err(), Some(SdfError::Cyclic));
    }

    #[test]
    fn multi_loop_graph() {
        // Ring of three with enough delay on one edge.
        let mut g = SdfGraph::new("ring");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge(a, b, 1, 1).unwrap();
        g.add_edge(b, c, 1, 1).unwrap();
        g.add_edge_with_delay(c, a, 1, 1, 1).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let (skeleton, feedback) = acyclic_skeleton(&g, &q).unwrap();
        assert_eq!(feedback.len(), 1);
        let order = apgan(&skeleton, &q).unwrap();
        let sas = dppo(&skeleton, &q, &order).unwrap().tree;
        validate_schedule(&g, &sas.to_looped_schedule(), &q).unwrap();
    }
}
