//! Unified dispatch over the crate's loop-hierarchy optimizers.
//!
//! The synthesis engine sweeps a candidate lattice whose second axis is
//! *which* dynamic program builds the loop hierarchy for a given lexical
//! order. [`LoopVariant`] names the choices and [`schedule_variant`]
//! dispatches to the right DP, normalising their differing result types
//! into one [`ScheduledVariant`].

use std::fmt;
use std::str::FromStr;

use sdf_core::error::SdfError;
use sdf_core::graph::{ActorId, SdfGraph};
use sdf_core::repetitions::RepetitionsVector;
use sdf_core::schedule::SasTree;

use crate::chain::ChainTables;
use crate::chain_precise::{chain_precise, DEFAULT_FRONTIER_CAP};
use crate::dppo::{dppo, dppo_from_tables_memo};
use crate::dpwin::DpMode;
use crate::memo::MemoStore;
use crate::sdppo::{sdppo, sdppo_from_tables_memo, FactoringPolicy};

/// Which loop-hierarchy dynamic program to run over a lexical order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum LoopVariant {
    /// The Eq. 5 shared-buffer heuristic DP (the paper's main algorithm).
    #[default]
    Sdppo,
    /// The Eqs. 2–4 non-shared DP; its schedules are the paper's baseline
    /// but they can still be lifetime-packed afterwards.
    Dppo,
    /// The §6 exact triple-cost DP; only valid for chain-structured
    /// graphs (it derives the chain order itself).
    ChainPrecise,
}

impl LoopVariant {
    /// Every variant, in the engine's canonical lattice order.
    pub const ALL: [LoopVariant; 3] = [
        LoopVariant::Sdppo,
        LoopVariant::Dppo,
        LoopVariant::ChainPrecise,
    ];

    /// Short lower-case name (`sdppo`, `dppo`, `chain_precise`).
    pub fn as_str(self) -> &'static str {
        match self {
            LoopVariant::Sdppo => "sdppo",
            LoopVariant::Dppo => "dppo",
            LoopVariant::ChainPrecise => "chain_precise",
        }
    }

    /// Whether this variant can run on `graph` (chain-precise requires a
    /// chain-structured graph).
    pub fn applicable_to(self, graph: &SdfGraph) -> bool {
        match self {
            LoopVariant::Sdppo | LoopVariant::Dppo => true,
            LoopVariant::ChainPrecise => graph.is_chain(),
        }
    }

    /// Whether the variant's schedule depends on the lexical order it is
    /// given (chain-precise derives the chain order itself, so running it
    /// once per graph suffices no matter how many orders are swept).
    pub fn order_sensitive(self) -> bool {
        !matches!(self, LoopVariant::ChainPrecise)
    }
}

impl fmt::Display for LoopVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for LoopVariant {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "sdppo" => Ok(LoopVariant::Sdppo),
            "dppo" => Ok(LoopVariant::Dppo),
            "chain_precise" | "chain-precise" => Ok(LoopVariant::ChainPrecise),
            other => Err(format!(
                "unknown loop variant `{other}` (expected sdppo, dppo or chain_precise)"
            )),
        }
    }
}

/// A loop hierarchy produced by one [`LoopVariant`].
#[derive(Clone, Debug)]
pub struct ScheduledVariant {
    /// The optimised single appearance schedule.
    pub tree: SasTree,
    /// The variant's own cost estimate: Eq. 5 for SDPPO, non-shared
    /// bufmem for DPPO, the triple's `center` for chain-precise. Estimates
    /// of different variants are comparable as shared-model costs except
    /// DPPO's, which is the non-shared total.
    pub cost_estimate: u64,
}

/// Runs `variant` on `order`, normalising the result.
///
/// # Errors
///
/// * Whatever the underlying DP reports ([`SdfError::EmptyGraph`], order
///   validation failures, …).
/// * [`SdfError::NotChainStructured`] for
///   [`LoopVariant::ChainPrecise`] on a non-chain graph.
///
/// # Examples
///
/// ```
/// use sdf_core::{SdfGraph, RepetitionsVector};
/// use sdf_sched::variant::{schedule_variant, LoopVariant};
///
/// # fn main() -> Result<(), sdf_core::SdfError> {
/// let mut g = SdfGraph::new("fig2");
/// let a = g.add_actor("A");
/// let b = g.add_actor("B");
/// let c = g.add_actor("C");
/// g.add_edge(a, b, 20, 10)?;
/// g.add_edge(b, c, 20, 10)?;
/// let q = RepetitionsVector::compute(&g)?;
/// let s = schedule_variant(&g, &q, &[a, b, c], LoopVariant::Sdppo)?;
/// assert_eq!(s.cost_estimate, 40);
/// # Ok(())
/// # }
/// ```
pub fn schedule_variant(
    graph: &SdfGraph,
    q: &RepetitionsVector,
    order: &[ActorId],
    variant: LoopVariant,
) -> Result<ScheduledVariant, SdfError> {
    match variant {
        LoopVariant::Sdppo => {
            let r = sdppo(graph, q, order)?;
            Ok(ScheduledVariant {
                tree: r.tree,
                cost_estimate: r.shared_cost,
            })
        }
        LoopVariant::Dppo => {
            let r = dppo(graph, q, order)?;
            Ok(ScheduledVariant {
                tree: r.tree,
                cost_estimate: r.bufmem,
            })
        }
        LoopVariant::ChainPrecise => {
            let r = chain_precise(graph, q, DEFAULT_FRONTIER_CAP)?;
            Ok(ScheduledVariant {
                tree: r.tree,
                cost_estimate: r.cost.center,
            })
        }
    }
}

/// Runs `variant` against prebuilt [`ChainTables`] with an explicit
/// [`DpMode`], so candidates sharing a lexical order share one table
/// build.  Chain-precise ignores the tables (it derives the chain order
/// itself) and always runs exactly.
///
/// # Errors
///
/// * [`SdfError::NotChainStructured`] for [`LoopVariant::ChainPrecise`]
///   on a non-chain graph.
pub fn schedule_variant_from_tables(
    graph: &SdfGraph,
    q: &RepetitionsVector,
    ct: &ChainTables,
    variant: LoopVariant,
    mode: DpMode,
) -> Result<ScheduledVariant, SdfError> {
    schedule_variant_from_tables_memo(graph, q, ct, variant, mode, None)
}

/// Like [`schedule_variant_from_tables`], plus an optional cross-run
/// [`MemoStore`] the chain DPs probe for content-addressed subchain
/// results. Chain-precise has no windowed formulation and ignores the
/// store. Results are bit-identical with and without a store.
///
/// # Errors
///
/// Same as [`schedule_variant_from_tables`].
pub fn schedule_variant_from_tables_memo(
    graph: &SdfGraph,
    q: &RepetitionsVector,
    ct: &ChainTables,
    variant: LoopVariant,
    mode: DpMode,
    memo: Option<&MemoStore>,
) -> Result<ScheduledVariant, SdfError> {
    match variant {
        LoopVariant::Sdppo => {
            let r = sdppo_from_tables_memo(ct, q, FactoringPolicy::Heuristic, mode, memo);
            Ok(ScheduledVariant {
                tree: r.tree,
                cost_estimate: r.shared_cost,
            })
        }
        LoopVariant::Dppo => {
            let r = dppo_from_tables_memo(ct, q, mode, memo);
            Ok(ScheduledVariant {
                tree: r.tree,
                cost_estimate: r.bufmem,
            })
        }
        LoopVariant::ChainPrecise => {
            let r = chain_precise(graph, q, DEFAULT_FRONTIER_CAP)?;
            Ok(ScheduledVariant {
                tree: r.tree,
                cost_estimate: r.cost.center,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2() -> (SdfGraph, RepetitionsVector, Vec<ActorId>) {
        let mut g = SdfGraph::new("fig2");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge(a, b, 20, 10).unwrap();
        g.add_edge(b, c, 20, 10).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        (g, q, vec![a, b, c])
    }

    #[test]
    fn dispatch_matches_direct_calls() {
        let (g, q, order) = fig2();
        let s = schedule_variant(&g, &q, &order, LoopVariant::Sdppo).unwrap();
        assert_eq!(s.cost_estimate, sdppo(&g, &q, &order).unwrap().shared_cost);
        let d = schedule_variant(&g, &q, &order, LoopVariant::Dppo).unwrap();
        assert_eq!(d.cost_estimate, dppo(&g, &q, &order).unwrap().bufmem);
        let c = schedule_variant(&g, &q, &order, LoopVariant::ChainPrecise).unwrap();
        assert_eq!(
            c.cost_estimate,
            chain_precise(&g, &q, DEFAULT_FRONTIER_CAP)
                .unwrap()
                .cost
                .center
        );
    }

    #[test]
    fn from_tables_dispatch_matches_plain_dispatch() {
        let (g, q, order) = fig2();
        let ct = ChainTables::build(&g, &q, &order).unwrap();
        for variant in LoopVariant::ALL {
            let plain = schedule_variant(&g, &q, &order, variant).unwrap();
            for mode in DpMode::ALL {
                let tabled = schedule_variant_from_tables(&g, &q, &ct, variant, mode).unwrap();
                assert_eq!(plain.tree, tabled.tree, "{variant} {mode}");
                assert_eq!(
                    plain.cost_estimate, tabled.cost_estimate,
                    "{variant} {mode}"
                );
            }
        }
    }

    #[test]
    fn applicability_and_order_sensitivity() {
        let (g, _, _) = fig2();
        assert!(LoopVariant::ChainPrecise.applicable_to(&g));
        assert!(!LoopVariant::ChainPrecise.order_sensitive());
        let mut fork = SdfGraph::new("fork");
        let s = fork.add_actor("S");
        let x = fork.add_actor("X");
        let y = fork.add_actor("Y");
        fork.add_edge(s, x, 1, 1).unwrap();
        fork.add_edge(s, y, 1, 1).unwrap();
        assert!(!LoopVariant::ChainPrecise.applicable_to(&fork));
        assert!(LoopVariant::Sdppo.applicable_to(&fork));
    }

    #[test]
    fn names_round_trip() {
        for v in LoopVariant::ALL {
            assert_eq!(v.as_str().parse::<LoopVariant>().unwrap(), v);
            assert_eq!(v.to_string(), v.as_str());
        }
        assert!("bogus".parse::<LoopVariant>().is_err());
    }
}
