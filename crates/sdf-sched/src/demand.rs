//! The greedy data-driven scheduler of §11.1.3.
//!
//! This scheduler fires a sink actor of an edge in preference to the source
//! actor whenever both are fireable, producing (generally non-single-
//! appearance) schedules whose per-edge buffering approaches the
//! all-schedules lower bound `a + b − gcd(a,b) + d mod gcd(a,b)`; for
//! chain-structured graphs the result is buffer-optimal over all valid
//! schedules.  It is the paper's reference point for how much cheaper
//! dynamic scheduling can be in pure memory terms.

use sdf_core::error::SdfError;
use sdf_core::graph::SdfGraph;
use sdf_core::repetitions::RepetitionsVector;
use sdf_core::schedule::{LoopedSchedule, ScheduleNode};

/// Builds one period of the greedy sink-first schedule.
///
/// Among all actors that are currently fireable and still owe firings this
/// period, the one deepest in a fixed topological order fires next; actors
/// closest to the graph outputs therefore drain buffers as early as
/// possible.
///
/// # Errors
///
/// * [`SdfError::EmptyGraph`] for graphs with no actors.
/// * [`SdfError::Cyclic`] if the graph is cyclic (a topological priority is
///   required).
/// * [`SdfError::Deadlock`] if no owing actor is fireable before the period
///   completes (cannot happen for consistent acyclic graphs).
///
/// # Examples
///
/// ```
/// use sdf_core::{SdfGraph, RepetitionsVector};
/// use sdf_core::simulate::validate_schedule;
/// use sdf_sched::demand::demand_driven_schedule;
///
/// # fn main() -> Result<(), sdf_core::SdfError> {
/// let mut g = SdfGraph::new("t");
/// let a = g.add_actor("A");
/// let b = g.add_actor("B");
/// g.add_edge(a, b, 2, 3)?;
/// let q = RepetitionsVector::compute(&g)?;
/// let s = demand_driven_schedule(&g, &q)?;
/// let report = validate_schedule(&g, &s, &q)?;
/// assert_eq!(report.bufmem(), 4); // a + b - gcd = 2 + 3 - 1
/// # Ok(())
/// # }
/// ```
pub fn demand_driven_schedule(
    graph: &SdfGraph,
    q: &RepetitionsVector,
) -> Result<LoopedSchedule, SdfError> {
    let n = graph.actor_count();
    if n == 0 {
        return Err(SdfError::EmptyGraph);
    }
    let topo = graph.topological_sort()?;
    // Priority: later in topological order fires first.
    let mut priority = vec![0usize; n];
    for (rank, &a) in topo.iter().enumerate() {
        priority[a.index()] = rank;
    }

    let mut tokens: Vec<u64> = graph.edges().map(|(_, e)| e.delay).collect();
    let mut owed: Vec<u64> = graph.actors().map(|a| q.get(a)).collect();
    let total: u64 = owed.iter().sum();
    let mut firing_seq = Vec::new();

    for _ in 0..total {
        let next = graph
            .actors()
            .filter(|&a| owed[a.index()] > 0)
            .filter(|&a| {
                graph
                    .in_edges(a)
                    .iter()
                    .all(|&e| tokens[e.index()] >= graph.edge(e).cons)
            })
            .max_by_key(|&a| priority[a.index()]);
        let Some(a) = next else {
            // Some owing actor exists (loop bound) but none is fireable.
            let stuck = graph
                .actors()
                .find(|&a| owed[a.index()] > 0)
                .expect("an owing actor must exist");
            return Err(SdfError::Deadlock { actor: stuck });
        };
        owed[a.index()] -= 1;
        for &e in graph.in_edges(a) {
            tokens[e.index()] -= graph.edge(e).cons;
        }
        for &e in graph.out_edges(a) {
            tokens[e.index()] += graph.edge(e).prod;
        }
        firing_seq.push(a);
    }

    // Coalesce consecutive identical firings into counted Fire nodes.
    let mut body: Vec<ScheduleNode> = Vec::new();
    for a in firing_seq {
        match body.last_mut() {
            Some(ScheduleNode::Fire { actor, count }) if *actor == a => *count += 1,
            _ => body.push(ScheduleNode::fire(a)),
        }
    }
    Ok(LoopedSchedule::new(body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdf_core::bounds::min_buffer_bound;
    use sdf_core::simulate::validate_schedule;

    #[test]
    fn chain_achieves_all_schedules_bound() {
        // CD-to-DAT chain: greedy is buffer-optimal on chains.
        let mut g = SdfGraph::new("cd-dat");
        let ids: Vec<_> = ["A", "B", "C", "D", "E", "F"]
            .iter()
            .map(|n| g.add_actor(*n))
            .collect();
        for (i, &(p, c)) in [(1, 1), (2, 3), (2, 7), (8, 7), (5, 1)].iter().enumerate() {
            g.add_edge(ids[i], ids[i + 1], p, c).unwrap();
        }
        let q = RepetitionsVector::compute(&g).unwrap();
        let s = demand_driven_schedule(&g, &q).unwrap();
        let report = validate_schedule(&g, &s, &q).unwrap();
        assert_eq!(report.bufmem(), min_buffer_bound(&g));
    }

    #[test]
    fn valid_on_branching_graph() {
        let mut g = SdfGraph::new("diamond");
        let s = g.add_actor("S");
        let x = g.add_actor("X");
        let y = g.add_actor("Y");
        let t = g.add_actor("T");
        g.add_edge(s, x, 2, 1).unwrap();
        g.add_edge(s, y, 3, 1).unwrap();
        g.add_edge(x, t, 1, 2).unwrap();
        g.add_edge(y, t, 1, 3).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let sched = demand_driven_schedule(&g, &q).unwrap();
        validate_schedule(&g, &sched, &q).unwrap();
    }

    #[test]
    fn beats_or_ties_best_sas_bufmem() {
        // Non-SAS schedules can only be at least as good per edge.
        let mut g = SdfGraph::new("pair");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge(a, b, 7, 5).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let s = demand_driven_schedule(&g, &q).unwrap();
        let greedy_mem = validate_schedule(&g, &s, &q).unwrap().bufmem();
        assert!(greedy_mem <= sdf_core::bounds::bmlb(&g));
        assert_eq!(greedy_mem, 11); // 7 + 5 - 1
    }

    #[test]
    fn respects_delays() {
        let mut g = SdfGraph::new("d");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge_with_delay(a, b, 1, 1, 1).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let s = demand_driven_schedule(&g, &q).unwrap();
        // B is downstream and immediately fireable thanks to the delay.
        let first = s.firings().next().unwrap();
        assert_eq!(first, b);
        validate_schedule(&g, &s, &q).unwrap();
    }

    #[test]
    fn single_actor() {
        let mut g = SdfGraph::new("one");
        let a = g.add_actor("A");
        let q = RepetitionsVector::compute(&g).unwrap();
        let s = demand_driven_schedule(&g, &q).unwrap();
        assert_eq!(s.firings().collect::<Vec<_>>(), vec![a]);
    }
}
