//! DPPO: dynamic programming post-optimisation for the **non-shared** buffer
//! model (§4, Eqs. 2–4).
//!
//! Given a lexical ordering (a topological sort) of an acyclic SDF graph,
//! DPPO finds the loop hierarchy minimising `bufmem(S)` — the sum over edges
//! of `max_tokens(e, S)` — among all SASs with that ordering
//! (*order-optimality*).  The recurrence over subchains `x_i … x_j` is
//!
//! ```text
//! b[i, j] = min_{i <= k < j}  b[i, k] + b[k+1, j] + c_ij[k]
//! c_ij[k] = Σ_{e crossing k} TNSE(e) / gcd(q(x_i), …, q(x_j)) + del(e)
//! ```

use sdf_core::error::SdfError;
use sdf_core::graph::{ActorId, SdfGraph};
use sdf_core::repetitions::RepetitionsVector;
use sdf_core::schedule::SasTree;

use crate::chain::ChainTables;
use crate::dpwin::{self, DpMode};
use crate::memo::{MemoStore, DOMAIN_DPPO};
use crate::treebuild::{build_tree, SplitDecision};

/// The result of a DPPO run: an order-optimal R-schedule and its predicted
/// non-shared buffer memory requirement.
#[derive(Clone, Debug)]
pub struct DppoResult {
    /// The optimised schedule tree.
    pub tree: SasTree,
    /// `bufmem` of the schedule under the non-shared model (Eq. 1).
    pub bufmem: u64,
}

/// Runs DPPO on `order` (which must be a topological sort of `graph`).
///
/// # Errors
///
/// * [`SdfError::EmptyGraph`] for graphs with no actors.
/// * [`SdfError::InvalidSchedule`] if `order` is not a permutation of the
///   actors or has backward edges.
///
/// # Examples
///
/// ```
/// use sdf_core::{SdfGraph, RepetitionsVector};
/// use sdf_sched::dppo::dppo;
///
/// # fn main() -> Result<(), sdf_core::SdfError> {
/// let mut g = SdfGraph::new("fig2");
/// let a = g.add_actor("A");
/// let b = g.add_actor("B");
/// let c = g.add_actor("C");
/// g.add_edge(a, b, 20, 10)?;
/// g.add_edge(b, c, 20, 10)?;
/// let q = RepetitionsVector::compute(&g)?;
/// let result = dppo(&g, &q, &[a, b, c])?;
/// assert_eq!(result.bufmem, 40);
/// assert_eq!(result.tree.to_looped_schedule().display(&g).to_string(), "A(2B(2C))");
/// # Ok(())
/// # }
/// ```
pub fn dppo(
    graph: &SdfGraph,
    q: &RepetitionsVector,
    order: &[ActorId],
) -> Result<DppoResult, SdfError> {
    dppo_with_mode(graph, q, order, DpMode::default())
}

/// Runs DPPO with an explicit [`DpMode`].
///
/// # Errors
///
/// Same as [`dppo`].
pub fn dppo_with_mode(
    graph: &SdfGraph,
    q: &RepetitionsVector,
    order: &[ActorId],
    mode: DpMode,
) -> Result<DppoResult, SdfError> {
    if graph.actor_count() == 0 {
        return Err(SdfError::EmptyGraph);
    }
    let ct = ChainTables::build(graph, q, order)?;
    Ok(dppo_from_tables(&ct, q, mode))
}

/// Runs DPPO over prebuilt [`ChainTables`], so candidates sharing a
/// lexical order share the O(n²) gcd/prefix-sum work.
///
/// # Panics
///
/// Panics if `ct` is empty (callers validate via [`ChainTables::build`]).
pub fn dppo_from_tables(ct: &ChainTables, q: &RepetitionsVector, mode: DpMode) -> DppoResult {
    dppo_from_tables_memo(ct, q, mode, None)
}

/// [`dppo_from_tables`] with an optional cross-run [`MemoStore`]: cells
/// whose subchain content was solved by *any* earlier run (this graph or
/// an edited relative) are answered from the store.  Requires tables
/// built via [`ChainTables::build_hashed`] and [`DpMode::Windowed`] for
/// the memo to engage; results are bit-identical with or without it.
///
/// # Panics
///
/// Panics if `ct` is empty (callers validate via [`ChainTables::build`]).
pub fn dppo_from_tables_memo(
    ct: &ChainTables,
    q: &RepetitionsVector,
    mode: DpMode,
    memo: Option<&MemoStore>,
) -> DppoResult {
    assert!(!ct.is_empty(), "DPPO needs at least one actor");
    let _span = sdf_trace::span!("sched.dppo", actors = ct.len());
    let n = ct.len();
    let mut solver = dpwin::Solver::new_memo(
        ct,
        mode,
        dpwin::Combine::Sum,
        |i, k, j| ct.split_cost(i, k, j),
        memo.map(|s| (s, DOMAIN_DPPO)),
    );
    let bufmem = solver.value(0, n - 1);
    // Tree decisions read argmin splits straight from the solver: the
    // windowed scan provably reproduces the exact scan's smallest-k
    // tie-break, and resolving a cell always computes the two children
    // its tree decision visits next.
    let solver = std::cell::RefCell::new(solver);
    let tree = build_tree(ct, q, &|i, j| SplitDecision {
        k: solver.borrow_mut().tree_split(i, j),
        factored: true,
    });
    if sdf_trace::enabled() {
        let nn = n as u64;
        sdf_trace::counter_inc("sched.dppo.runs");
        sdf_trace::counter_add("sched.dppo.cells", nn * (nn - 1) / 2);
        // Actual crossing-cost evaluations, not the closed form — the
        // windowed scan does far fewer and the regression sentinel gates
        // on this counter.
        sdf_trace::counter_add("sched.dppo.split_probes", solver.borrow().probes());
    }
    DppoResult { tree, bufmem }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdf_core::simulate::validate_schedule;

    fn run(graph: &SdfGraph, order: &[ActorId]) -> (DppoResult, RepetitionsVector) {
        let q = RepetitionsVector::compute(graph).unwrap();
        let r = dppo(graph, &q, order).unwrap();
        (r, q)
    }

    #[test]
    fn fig2_order_optimal() {
        let mut g = SdfGraph::new("fig2");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge(a, b, 20, 10).unwrap();
        g.add_edge(b, c, 20, 10).unwrap();
        let (r, q) = run(&g, &[a, b, c]);
        assert_eq!(r.bufmem, 40);
        r.tree.validate(&g, &q).unwrap();
        // The DP estimate must match ground-truth simulation.
        let report = validate_schedule(&g, &r.tree.to_looped_schedule(), &q).unwrap();
        assert_eq!(report.bufmem(), r.bufmem);
    }

    #[test]
    fn cd_dat_known_optimum() {
        // The CD-to-DAT chain's order-optimal SAS has bufmem 260
        // (Bhattacharyya, Murthy, Lee: "Software Synthesis from Dataflow
        // Graphs", Table 5.1 reports the GDPPO result for this order).
        let mut g = SdfGraph::new("cd-dat");
        let ids: Vec<_> = ["A", "B", "C", "D", "E", "F"]
            .iter()
            .map(|n| g.add_actor(*n))
            .collect();
        for (i, &(p, c)) in [(1, 1), (2, 3), (2, 7), (8, 7), (5, 1)].iter().enumerate() {
            g.add_edge(ids[i], ids[i + 1], p, c).unwrap();
        }
        let (r, q) = run(&g, &ids);
        let report = validate_schedule(&g, &r.tree.to_looped_schedule(), &q).unwrap();
        assert_eq!(report.bufmem(), r.bufmem);
        // Sanity bracket: at least the BMLB, far below the flat schedule.
        let bmlb = sdf_core::bounds::bmlb(&g);
        assert!(r.bufmem >= bmlb);
        let flat = sdf_core::schedule::LoopedSchedule::flat_sas(&ids, &q);
        let flat_mem = validate_schedule(&g, &flat, &q).unwrap().bufmem();
        assert!(r.bufmem < flat_mem);
    }

    #[test]
    fn dp_estimate_equals_simulation_with_delays() {
        let mut g = SdfGraph::new("delayed");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge_with_delay(a, b, 2, 3, 4).unwrap();
        g.add_edge(b, c, 1, 2).unwrap();
        let (r, q) = run(&g, &[a, b, c]);
        let report = validate_schedule(&g, &r.tree.to_looped_schedule(), &q).unwrap();
        assert_eq!(report.bufmem(), r.bufmem);
    }

    #[test]
    fn single_actor_graph() {
        let mut g = SdfGraph::new("one");
        let a = g.add_actor("A");
        let (r, _) = run(&g, &[a]);
        assert_eq!(r.bufmem, 0);
    }

    #[test]
    fn two_actor_graph() {
        let mut g = SdfGraph::new("two");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge(a, b, 3, 5).unwrap();
        let (r, q) = run(&g, &[a, b]);
        // q = (5, 3); only split: cost TNSE/gcd = 15.
        assert_eq!(r.bufmem, 15);
        r.tree.validate(&g, &q).unwrap();
    }

    #[test]
    fn branching_graph_all_edges_counted() {
        // Diamond: S -> X, S -> Y, X -> T, Y -> T, homogeneous.
        let mut g = SdfGraph::new("diamond");
        let s = g.add_actor("S");
        let x = g.add_actor("X");
        let y = g.add_actor("Y");
        let t = g.add_actor("T");
        g.add_edge(s, x, 1, 1).unwrap();
        g.add_edge(s, y, 1, 1).unwrap();
        g.add_edge(x, t, 1, 1).unwrap();
        g.add_edge(y, t, 1, 1).unwrap();
        let (r, q) = run(&g, &[s, x, y, t]);
        assert_eq!(r.bufmem, 4);
        let report = validate_schedule(&g, &r.tree.to_looped_schedule(), &q).unwrap();
        assert_eq!(report.bufmem(), 4);
    }

    #[test]
    fn windowed_matches_exact_on_cd_dat() {
        let mut g = SdfGraph::new("cd-dat");
        let ids: Vec<_> = ["A", "B", "C", "D", "E", "F"]
            .iter()
            .map(|n| g.add_actor(*n))
            .collect();
        for (i, &(p, c)) in [(1, 1), (2, 3), (2, 7), (8, 7), (5, 1)].iter().enumerate() {
            g.add_edge(ids[i], ids[i + 1], p, c).unwrap();
        }
        let q = RepetitionsVector::compute(&g).unwrap();
        let exact = dppo_with_mode(&g, &q, &ids, DpMode::Exact).unwrap();
        let windowed = dppo_with_mode(&g, &q, &ids, DpMode::Windowed).unwrap();
        assert_eq!(exact.bufmem, windowed.bufmem);
        assert_eq!(exact.tree, windowed.tree);
    }

    #[test]
    fn windowed_matches_exact_on_random_chains() {
        // LCG-driven chains with rate changes and sporadic delays — the
        // cost family that disproved a static Knuth split window during
        // development.  Windowed must reproduce exact bufmem AND trees.
        struct Lcg(u64);
        impl Lcg {
            fn next(&mut self, m: u64) -> u64 {
                self.0 = self
                    .0
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (self.0 >> 33) % m
            }
        }
        let mut rng = Lcg(0x9e3779b97f4a7c15);
        let mut probes_exact = 0u64;
        let mut probes_windowed = 0u64;
        for trial in 0..300u64 {
            let n = 2 + rng.next(38) as usize;
            let mut g = SdfGraph::new("rc");
            let ids: Vec<_> = (0..n).map(|i| g.add_actor(format!("a{i}"))).collect();
            for w in 0..n - 1 {
                let p = 1 + rng.next(9);
                let c = 1 + rng.next(9);
                let d = if rng.next(4) == 0 { rng.next(12) } else { 0 };
                g.add_edge_with_delay(ids[w], ids[w + 1], p, c, d).unwrap();
            }
            let q = RepetitionsVector::compute(&g).unwrap();
            let ct = ChainTables::build(&g, &q, &ids).unwrap();
            let nn = ct.len();
            let mut e = dpwin::Solver::new(&ct, DpMode::Exact, dpwin::Combine::Sum, |i, k, j| {
                ct.split_cost(i, k, j)
            });
            let mut w =
                dpwin::Solver::new(&ct, DpMode::Windowed, dpwin::Combine::Sum, |i, k, j| {
                    ct.split_cost(i, k, j)
                });
            assert_eq!(
                e.value(0, nn - 1),
                w.value(0, nn - 1),
                "trial {trial} n={n}"
            );
            probes_exact += e.probes();
            probes_windowed += w.probes();
            let er = dppo_from_tables(&ct, &q, DpMode::Exact);
            let wr = dppo_from_tables(&ct, &q, DpMode::Windowed);
            assert_eq!(er.bufmem, wr.bufmem, "trial {trial} n={n}");
            assert_eq!(er.tree, wr.tree, "trial {trial} n={n}");
        }
        assert!(
            probes_windowed < probes_exact,
            "windowed {probes_windowed} >= exact {probes_exact}"
        );
    }

    #[test]
    fn memo_assisted_runs_are_bit_identical() {
        // Random chains; every run with the memo (cold store, warm store,
        // evicting store) must reproduce the no-memo result exactly —
        // bufmem AND tree.
        struct Lcg(u64);
        impl Lcg {
            fn next(&mut self, m: u64) -> u64 {
                self.0 = self
                    .0
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (self.0 >> 33) % m
            }
        }
        let mut rng = Lcg(0x5851f42d4c957f2d);
        let shared = crate::memo::MemoStore::with_capacity(1 << 16);
        let tiny = crate::memo::MemoStore::with_capacity(3);
        for trial in 0..120u64 {
            let n = 2 + rng.next(30) as usize;
            let mut g = SdfGraph::new("m");
            let ids: Vec<_> = (0..n).map(|i| g.add_actor(format!("a{i}"))).collect();
            for w in 0..n - 1 {
                let p = 1 + rng.next(7);
                let c = 1 + rng.next(7);
                let d = if rng.next(5) == 0 { rng.next(9) } else { 0 };
                g.add_edge_with_delay(ids[w], ids[w + 1], p, c, d).unwrap();
            }
            let q = RepetitionsVector::compute(&g).unwrap();
            let ct = ChainTables::build_hashed(&g, &q, &ids).unwrap();
            let cold = dppo_from_tables(&ct, &q, DpMode::Windowed);
            let first = dppo_from_tables_memo(&ct, &q, DpMode::Windowed, Some(&shared));
            let warm = dppo_from_tables_memo(&ct, &q, DpMode::Windowed, Some(&shared));
            // A store three entries wide evicts constantly mid-run;
            // correctness must not care.
            let evicting = dppo_from_tables_memo(&ct, &q, DpMode::Windowed, Some(&tiny));
            for (name, r) in [("first", &first), ("warm", &warm), ("evicting", &evicting)] {
                assert_eq!(cold.bufmem, r.bufmem, "trial {trial} {name}");
                assert_eq!(cold.tree, r.tree, "trial {trial} {name}");
            }
        }
        let stats = shared.stats();
        assert!(stats.hits > 0, "warm runs never hit: {stats:?}");
        assert!(tiny.stats().evictions > 0, "tiny store never evicted");
    }

    #[test]
    fn warm_rerun_resolves_from_the_store_alone() {
        // A fully warm rerun must answer every tree-visited cell from the
        // store: zero crossing-cost probes beyond the initial candidate
        // scoring of cells it never reaches. We assert the sharper form:
        // the second run misses nothing.
        let mut g = SdfGraph::new("cd-dat");
        let ids: Vec<_> = ["A", "B", "C", "D", "E", "F"]
            .iter()
            .map(|n| g.add_actor(*n))
            .collect();
        for (i, &(p, c)) in [(1, 1), (2, 3), (2, 7), (8, 7), (5, 1)].iter().enumerate() {
            g.add_edge(ids[i], ids[i + 1], p, c).unwrap();
        }
        let q = RepetitionsVector::compute(&g).unwrap();
        let ct = ChainTables::build_hashed(&g, &q, &ids).unwrap();
        let store = crate::memo::MemoStore::new();
        let first = dppo_from_tables_memo(&ct, &q, DpMode::Windowed, Some(&store));
        let before = store.stats();
        let warm = dppo_from_tables_memo(&ct, &q, DpMode::Windowed, Some(&store));
        let after = store.stats();
        assert_eq!(first.tree, warm.tree);
        assert_eq!(after.misses, before.misses, "warm run missed the store");
        assert!(after.hits > before.hits);
        assert_eq!(after.inserts, before.inserts, "warm run re-inserted");
    }

    #[test]
    fn beats_or_equals_flat_schedule_on_random_orders() {
        // DPPO is order-optimal, so it can never exceed the flat SAS cost
        // for the same order.
        let mut g = SdfGraph::new("r");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        let d = g.add_actor("D");
        // q = (4, 6, 4, 2), consistent on every edge.
        g.add_edge(a, b, 3, 2).unwrap();
        g.add_edge(b, c, 2, 3).unwrap();
        g.add_edge(a, d, 1, 2).unwrap();
        g.add_edge(c, d, 1, 2).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let order = vec![a, b, c, d];
        let r = dppo(&g, &q, &order).unwrap();
        let flat = sdf_core::schedule::LoopedSchedule::flat_sas(&order, &q);
        let flat_mem = validate_schedule(&g, &flat, &q).unwrap().bufmem();
        let sim = validate_schedule(&g, &r.tree.to_looped_schedule(), &q)
            .unwrap()
            .bufmem();
        assert!(sim <= flat_mem);
        assert_eq!(sim, r.bufmem);
    }
}
