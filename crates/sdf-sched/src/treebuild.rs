//! Construction of R-schedule trees from dynamic-programming split tables.

use sdf_core::repetitions::RepetitionsVector;
use sdf_core::schedule::{SasNode, SasTree};

use crate::chain::ChainTables;

/// A parenthesisation decision for subchain `[i..=j]`: where to split, and
/// whether to factor the common gcd out as a loop around the pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitDecision {
    /// The split position `k` (`i <= k < j`): left is `[i..=k]`, right is
    /// `[k+1..=j]`.
    pub k: usize,
    /// Whether the subchain's gcd is factored into a surrounding loop.
    pub factored: bool,
}

/// Builds the R-schedule tree for the whole chain from per-subchain split
/// decisions.
///
/// `decision(i, j)` must return the chosen split for every subchain with at
/// least two actors.  `factored == true` wraps `[i..=j]` in a loop of count
/// `g(i..j) / applied` where `applied` is the product of enclosing loop
/// factors; leaves fire `q(x) / applied` times.
pub fn build_tree(
    ct: &ChainTables,
    q: &RepetitionsVector,
    decision: &impl Fn(usize, usize) -> SplitDecision,
) -> SasTree {
    SasTree::new(build_node(ct, q, decision, 0, ct.len() - 1, 1))
}

fn build_node(
    ct: &ChainTables,
    q: &RepetitionsVector,
    decision: &impl Fn(usize, usize) -> SplitDecision,
    i: usize,
    j: usize,
    applied: u64,
) -> SasNode {
    if i == j {
        let actor = ct.actor(i);
        return SasNode::leaf(actor, q.get(actor) / applied);
    }
    let d = decision(i, j);
    debug_assert!(d.k >= i && d.k < j, "split {} outside [{i}, {j})", d.k);
    let (count, inner_applied) = if d.factored {
        let g = ct.gcd_range(i, j);
        debug_assert!(
            applied <= g && g.is_multiple_of(applied),
            "enclosing factor {applied} must divide subchain gcd {g}"
        );
        (g / applied, g)
    } else {
        (1, applied)
    };
    let left = build_node(ct, q, decision, i, d.k, inner_applied);
    let right = build_node(ct, q, decision, d.k + 1, j, inner_applied);
    SasNode::branch(count, left, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdf_core::graph::SdfGraph;

    #[test]
    fn builds_factored_tree() {
        // Fig. 2 graph: q = (1, 2, 4); split after A then after B, all
        // factored, gives A (2 B (2C)).
        let mut g = SdfGraph::new("fig2");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge(a, b, 20, 10).unwrap();
        g.add_edge(b, c, 20, 10).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let ct = ChainTables::build(&g, &q, &[a, b, c]).unwrap();
        let tree = build_tree(&ct, &q, &|i, _j| SplitDecision {
            k: i,
            factored: true,
        });
        tree.validate(&g, &q).unwrap();
        let s = tree.to_looped_schedule();
        assert_eq!(s.display(&g).to_string(), "A(2B(2C))");
    }

    #[test]
    fn unfactored_branch_keeps_counts_in_children() {
        let mut g = SdfGraph::new("t");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge(a, b, 1, 1).unwrap(); // q = (1, 1) -> trivial factors
        let q = RepetitionsVector::compute(&g).unwrap();
        let ct = ChainTables::build(&g, &q, &[a, b]).unwrap();
        let tree = build_tree(&ct, &q, &|i, _| SplitDecision {
            k: i,
            factored: false,
        });
        tree.validate(&g, &q).unwrap();
    }

    #[test]
    fn mixed_factoring_valid() {
        // A --1,1--> B --1,1--> C with q = (2,2,2) forced by a 2-producing
        // source: D --2,1--> A chain makes q = (1,2,2,2).
        let mut g = SdfGraph::new("t");
        let d = g.add_actor("D");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge(d, a, 2, 1).unwrap();
        g.add_edge(a, b, 1, 1).unwrap();
        g.add_edge(b, c, 1, 1).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let ct = ChainTables::build(&g, &q, &[d, a, b, c]).unwrap();
        // Split D | A B C unfactored; then A | B C factored; then B | C.
        let tree = build_tree(&ct, &q, &|i, j| SplitDecision {
            k: i,
            factored: !(i == 0 && j == 3),
        });
        tree.validate(&g, &q).unwrap();
        // The inner factored pair gets a unit loop factor, which the looped
        // form inlines.
        let s = tree.to_looped_schedule().display(&g).to_string();
        assert_eq!(s, "D(2A B C)");
    }
}
