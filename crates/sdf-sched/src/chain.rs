//! Shared tables for the dynamic programs over a lexical ordering.
//!
//! Both DPPO (Eq. 2–4) and SDPPO (Eq. 5) repeatedly need, for a subchain
//! `x_i … x_j` of the lexical order split after position `k`:
//!
//! * `g[i][j] = gcd(q(x_i), …, q(x_j))`;
//! * the total TNSE and total delay of split-crossing edges
//!   (`src ∈ [i..k]`, `snk ∈ [k+1..j]`), and whether any exist.
//!
//! The crossing-edge aggregates are rectangle sums over a position-indexed
//! edge-weight matrix, answered in O(1) from 2-D prefix sums.

use sdf_core::error::SdfError;
use sdf_core::graph::{ActorId, SdfGraph};
use sdf_core::math::gcd;
use sdf_core::repetitions::RepetitionsVector;

use crate::memo::MemoKey;

/// Precomputed tables for DP over one lexical ordering of an SDF graph.
#[derive(Debug)]
pub struct ChainTables {
    n: usize,
    /// `order[p]` is the actor at lexical position `p`.
    order: Vec<ActorId>,
    /// gcd table, row-major `g[i*n + j]` for `i <= j`.
    g: Vec<u64>,
    /// 2-D prefix sums of TNSE between positions, `(n+1)×(n+1)`.
    tnse_ps: Vec<u64>,
    /// 2-D prefix sums of delays between positions.
    delay_ps: Vec<u64>,
    /// 2-D prefix sums of edge counts between positions.
    count_ps: Vec<u64>,
    /// Subchain content hasher, present only for
    /// [`ChainTables::build_hashed`] tables.
    hasher: Option<ChainHasher>,
}

impl ChainTables {
    /// Builds the tables for `order`, which must be a permutation of the
    /// graph's actors consistent with edge directions (every edge's source
    /// precedes its sink; edges violating this are rejected because the DP
    /// cost model is only meaningful for forward edges).
    ///
    /// # Errors
    ///
    /// * [`SdfError::InvalidSchedule`] if `order` is not a permutation of
    ///   the actors or some edge points backwards in it.
    pub fn build(
        graph: &SdfGraph,
        q: &RepetitionsVector,
        order: &[ActorId],
    ) -> Result<Self, SdfError> {
        Self::build_inner(graph, q, order, false)
    }

    /// [`ChainTables::build`] plus the subchain content hasher that keys
    /// the cross-run DP memo ([`crate::memo::MemoStore`]).  The hasher
    /// adds two O(n²) wrapping prefix tables; plain `build` skips them so
    /// non-incremental paths pay nothing.
    ///
    /// # Errors
    ///
    /// Same as [`ChainTables::build`].
    pub fn build_hashed(
        graph: &SdfGraph,
        q: &RepetitionsVector,
        order: &[ActorId],
    ) -> Result<Self, SdfError> {
        Self::build_inner(graph, q, order, true)
    }

    fn build_inner(
        graph: &SdfGraph,
        q: &RepetitionsVector,
        order: &[ActorId],
        hashed: bool,
    ) -> Result<Self, SdfError> {
        let n = graph.actor_count();
        if order.len() != n {
            return Err(SdfError::InvalidSchedule(format!(
                "lexical order has {} actors, graph has {}",
                order.len(),
                n
            )));
        }
        let mut pos = vec![usize::MAX; n];
        for (p, &a) in order.iter().enumerate() {
            if a.index() >= n || pos[a.index()] != usize::MAX {
                return Err(SdfError::InvalidSchedule(
                    "lexical order is not a permutation of the actors".into(),
                ));
            }
            pos[a.index()] = p;
        }

        // Edge weights keyed by (source position, sink position).
        let mut tnse = vec![0u64; n * n];
        let mut delay = vec![0u64; n * n];
        let mut count = vec![0u64; n * n];
        for (id, e) in graph.edges() {
            let ps = pos[e.src.index()];
            let pt = pos[e.snk.index()];
            if ps >= pt {
                return Err(SdfError::InvalidSchedule(format!(
                    "edge {id} points backwards in the lexical order",
                )));
            }
            tnse[ps * n + pt] += q.tnse(graph, id);
            delay[ps * n + pt] += e.delay;
            count[ps * n + pt] += 1;
        }

        let mut g = vec![0u64; n * n];
        for i in 0..n {
            g[i * n + i] = q.get(order[i]);
            for j in (i + 1)..n {
                g[i * n + j] = gcd(g[i * n + j - 1], q.get(order[j]));
            }
        }

        // The engine shares one build across every candidate with the
        // same lexical order, so the build count is a direct measure of
        // that reuse — the sentinel gates on it.
        sdf_trace::counter_inc("sched.chain_tables.builds");
        let hasher = if hashed {
            Some(ChainHasher::build(&tnse, &delay, &count, q, order, n))
        } else {
            None
        };
        Ok(ChainTables {
            n,
            order: order.to_vec(),
            g,
            tnse_ps: prefix_sums(&tnse, n),
            delay_ps: prefix_sums(&delay, n),
            count_ps: prefix_sums(&count, n),
            hasher,
        })
    }

    /// The content hasher, when built via [`ChainTables::build_hashed`].
    pub(crate) fn hasher(&self) -> Option<&ChainHasher> {
        self.hasher.as_ref()
    }

    /// Number of actors in the chain.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns true if the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The actor at lexical position `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= len()`.
    pub fn actor(&self, p: usize) -> ActorId {
        self.order[p]
    }

    /// The lexical order the tables were built for.
    pub fn order(&self) -> &[ActorId] {
        &self.order
    }

    /// `gcd(q(x_i), …, q(x_j))`, inclusive on both ends.
    ///
    /// # Panics
    ///
    /// Panics unless `i <= j < len()`.
    pub fn gcd_range(&self, i: usize, j: usize) -> u64 {
        assert!(i <= j && j < self.n);
        self.g[i * self.n + j]
    }

    /// Sum of TNSE over edges with source position in `[i..=k]` and sink
    /// position in `[k+1..=j]` (Eq. 4's crossing set).
    pub fn crossing_tnse(&self, i: usize, k: usize, j: usize) -> u64 {
        rect(&self.tnse_ps, self.n, i, k, k + 1, j)
    }

    /// Sum of delays over the crossing edges.
    pub fn crossing_delay(&self, i: usize, k: usize, j: usize) -> u64 {
        rect(&self.delay_ps, self.n, i, k, k + 1, j)
    }

    /// Number of crossing edges.
    pub fn crossing_count(&self, i: usize, k: usize, j: usize) -> u64 {
        rect(&self.count_ps, self.n, i, k, k + 1, j)
    }

    /// The split cost of Eq. 3: crossing TNSE divided by the subchain gcd,
    /// plus crossing delays (each crossing buffer holds its initial tokens
    /// on top of one split-iteration's production).
    pub fn split_cost(&self, i: usize, k: usize, j: usize) -> u64 {
        self.crossing_tnse(i, k, j) / self.gcd_range(i, j) + self.crossing_delay(i, k, j)
    }

    /// Aggregate `(TNSE, delay)` of the parallel edges from position `u`
    /// to position `v` — the windowed DP's per-pair lower-bound inputs.
    pub(crate) fn pair_weights(&self, u: usize, v: usize) -> (u64, u64) {
        (
            rect(&self.tnse_ps, self.n, u, u, v, v),
            rect(&self.delay_ps, self.n, u, u, v, v),
        )
    }

    /// The unfactored split cost: full-period crossing TNSE plus delays
    /// (used when a loop is deliberately left unfactored, §5.1).
    ///
    /// The production is still divided by any gcd an *enclosing* factored
    /// loop would extract; at DP level the convention is that the subchain
    /// fires each actor `q(x)` times, so the unfactored cost is the full
    /// TNSE.
    pub fn split_cost_unfactored(&self, i: usize, k: usize, j: usize) -> u64 {
        self.crossing_tnse(i, k, j) + self.crossing_delay(i, k, j)
    }
}

/// Translation-invariant polynomial hashes of subchain content, the key
/// source for the cross-run DP memo.
///
/// A windowed-DP cell over `[i..=j]` is a pure function of (a) the
/// repetition counts `q` at positions `i..=j` and (b) the aggregated
/// `(TNSE, delay, count)` of each position pair inside the window — the
/// exact values the DP's gcd and rectangle queries read.  The hasher
/// digests both with position-weighted polynomial sums mod 2⁶⁴:
///
/// * positions: `S[p] = Σ_{p'<p} h(q[p'])·B^p'`, so the window digest
///   `(S[j+1] − S[i])·B^{−i}` depends only on the *relative* content;
/// * pairs: a 2-D prefix table of `h₂(tnse, delay, count)·B^u·C^v`,
///   rectangled over `[i..j]²` and normalised by `B^{−i}·C^{−i}`.
///
/// `B` and `C` are odd, hence invertible mod 2⁶⁴, which is what makes the
/// O(1) shift-normalisation exact.  Two independently seeded families
/// give a 256-bit key; a collision would need two *different* subchains
/// to agree on all four digests plus length, which is negligible against
/// the store's 2²² capacity.
#[derive(Debug)]
pub(crate) struct ChainHasher {
    n: usize,
    /// Per-family 1-D prefix sums of position hashes, length `n+1`.
    pos_ps: [Vec<u64>; 2],
    /// Per-family 2-D wrapping prefix sums of pair hashes, `(n+1)²`.
    pair_ps: [Vec<u64>; 2],
    /// `inv_b_pow[f][i] = B_f^{−i}` (and likewise for `C_f`).
    inv_b_pow: [Vec<u64>; 2],
    inv_c_pow: [Vec<u64>; 2],
}

/// Per-family polynomial bases (odd, so invertible mod 2⁶⁴) and seeds.
const HASH_B: [u64; 2] = [0x9E37_79B9_7F4A_7C15, 0xD6E8_FEB8_6659_FD93];
const HASH_C: [u64; 2] = [0xC2B2_AE3D_27D4_EB4F, 0xA076_1D64_78BD_642F];
const SEED_POS: [u64; 2] = [0x243F_6A88_85A3_08D3, 0x1319_8A2E_0370_7344];
const SEED_PAIR: [u64; 2] = [0xA409_3822_299F_31D0, 0x082E_FA98_EC4E_6C89];

/// The splitmix64 finalizer: a fast full-avalanche 64-bit mixer.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The inverse of an odd `a` mod 2⁶⁴ (Newton iteration doubles the
/// correct low bits each step; five steps cover 64 bits).
fn inv_u64(a: u64) -> u64 {
    debug_assert!(a & 1 == 1, "only odd values are invertible mod 2^64");
    let mut x = a;
    for _ in 0..5 {
        x = x.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(x)));
    }
    debug_assert_eq!(a.wrapping_mul(x), 1);
    x
}

impl ChainHasher {
    /// Digests the raw (pre-prefix-sum) position-pair matrices and the
    /// repetition counts along `order`.
    fn build(
        tnse: &[u64],
        delay: &[u64],
        count: &[u64],
        q: &RepetitionsVector,
        order: &[ActorId],
        n: usize,
    ) -> ChainHasher {
        let mut pos_ps: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
        let mut pair_ps: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
        let mut inv_b_pow: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
        let mut inv_c_pow: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
        for f in 0..2 {
            let (b, c) = (HASH_B[f], HASH_C[f]);
            let (inv_b, inv_c) = (inv_u64(b), inv_u64(c));
            let mut b_pow = 1u64;
            let mut pos = vec![0u64; n + 1];
            let mut ibp = vec![1u64; n + 1];
            let mut icp = vec![1u64; n + 1];
            for p in 0..n {
                let h = mix64(q.get(order[p]) ^ SEED_POS[f]);
                pos[p + 1] = pos[p].wrapping_add(h.wrapping_mul(b_pow));
                b_pow = b_pow.wrapping_mul(b);
                ibp[p + 1] = ibp[p].wrapping_mul(inv_b);
                icp[p + 1] = icp[p].wrapping_mul(inv_c);
            }
            let w = n + 1;
            let mut pair = vec![0u64; w * w];
            let mut bu = 1u64;
            for u in 0..n {
                let mut cv = 1u64;
                for v in 0..n {
                    let idx = u * n + v;
                    let mut h = SEED_PAIR[f];
                    h = mix64(h ^ tnse[idx]);
                    h = mix64(h ^ delay[idx]);
                    h = mix64(h ^ count[idx]);
                    let cell = h.wrapping_mul(bu).wrapping_mul(cv);
                    pair[(u + 1) * w + (v + 1)] = cell
                        .wrapping_add(pair[u * w + (v + 1)])
                        .wrapping_add(pair[(u + 1) * w + v])
                        .wrapping_sub(pair[u * w + v]);
                    cv = cv.wrapping_mul(c);
                }
                bu = bu.wrapping_mul(b);
            }
            pos_ps[f] = pos;
            pair_ps[f] = pair;
            inv_b_pow[f] = ibp;
            inv_c_pow[f] = icp;
        }
        ChainHasher {
            n,
            pos_ps,
            pair_ps,
            inv_b_pow,
            inv_c_pow,
        }
    }

    /// The memo key of subchain `[i..=j]` under DP domain `tag`.
    pub(crate) fn subchain_key(&self, i: usize, j: usize, tag: u8) -> MemoKey {
        debug_assert!(i <= j && j < self.n);
        let mut parts = [0u64; 4];
        for f in 0..2 {
            let pos = self.pos_ps[f][j + 1]
                .wrapping_sub(self.pos_ps[f][i])
                .wrapping_mul(self.inv_b_pow[f][i]);
            let pair = rect_wrapping(&self.pair_ps[f], self.n, i, j, i, j)
                .wrapping_mul(self.inv_b_pow[f][i])
                .wrapping_mul(self.inv_c_pow[f][i]);
            parts[2 * f] = pos;
            parts[2 * f + 1] = pair;
        }
        MemoKey {
            h1: (u128::from(parts[0]) << 64) | u128::from(parts[1]),
            h2: (u128::from(parts[2]) << 64) | u128::from(parts[3]),
            len: (j - i + 1) as u32,
            tag,
        }
    }
}

/// Wrapping inclusion–exclusion rectangle over rows `r1..=r2`, cols
/// `c1..=c2` of a wrapping 2-D prefix table.
fn rect_wrapping(ps: &[u64], n: usize, r1: usize, r2: usize, c1: usize, c2: usize) -> u64 {
    let w = n + 1;
    ps[(r2 + 1) * w + (c2 + 1)]
        .wrapping_add(ps[r1 * w + c1])
        .wrapping_sub(ps[r1 * w + (c2 + 1)])
        .wrapping_sub(ps[(r2 + 1) * w + c1])
}

/// Builds `(n+1)×(n+1)` inclusive-exclusive 2-D prefix sums of an `n×n`
/// row-major matrix.
fn prefix_sums(m: &[u64], n: usize) -> Vec<u64> {
    let w = n + 1;
    let mut ps = vec![0u64; w * w];
    for r in 0..n {
        for c in 0..n {
            ps[(r + 1) * w + (c + 1)] =
                m[r * n + c] + ps[r * w + (c + 1)] + ps[(r + 1) * w + c] - ps[r * w + c];
        }
    }
    ps
}

/// Rectangle sum over rows `r1..=r2`, cols `c1..=c2` (saturating on empty
/// ranges).
fn rect(ps: &[u64], n: usize, r1: usize, r2: usize, c1: usize, c2: usize) -> u64 {
    if r1 > r2 || c1 > c2 || r1 >= n || c1 >= n {
        return 0;
    }
    let (r2, c2) = (r2.min(n - 1), c2.min(n - 1));
    let w = n + 1;
    ps[(r2 + 1) * w + (c2 + 1)] + ps[r1 * w + c1] - ps[r1 * w + (c2 + 1)] - ps[(r2 + 1) * w + c1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain3() -> (SdfGraph, RepetitionsVector, Vec<ActorId>) {
        // A --2,3--> B --1,2--> C : q = (3, 2, 1).
        let mut g = SdfGraph::new("chain3");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge(a, b, 2, 3).unwrap();
        g.add_edge(b, c, 1, 2).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        (g, q, vec![a, b, c])
    }

    #[test]
    fn gcd_table() {
        let (g, q, order) = chain3();
        let t = ChainTables::build(&g, &q, &order).unwrap();
        assert_eq!(t.gcd_range(0, 0), 3);
        assert_eq!(t.gcd_range(0, 1), 1);
        assert_eq!(t.gcd_range(1, 2), 1);
        assert_eq!(t.gcd_range(0, 2), 1);
    }

    #[test]
    fn crossing_sums() {
        let (g, q, order) = chain3();
        let t = ChainTables::build(&g, &q, &order).unwrap();
        // TNSE(A,B) = 2*3 = 6; TNSE(B,C) = 1*2 = 2.
        assert_eq!(t.crossing_tnse(0, 0, 2), 6);
        assert_eq!(t.crossing_tnse(0, 1, 2), 2);
        assert_eq!(t.crossing_tnse(0, 0, 1), 6);
        assert_eq!(t.crossing_count(0, 0, 2), 1);
        assert_eq!(t.crossing_count(0, 1, 2), 1);
    }

    #[test]
    fn split_cost_divides_by_gcd() {
        // A --10,5--> B: q = (1, 2), gcd 1 over [A,B]; TNSE = 10.
        let mut g = SdfGraph::new("t");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge(a, b, 10, 5).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let t = ChainTables::build(&g, &q, &[a, b]).unwrap();
        assert_eq!(t.split_cost(0, 0, 1), 10);
        // Scale so the gcd over the pair is 2: A --10,5--> B with q=(2,4)
        // can't happen (minimal). Use A --4,2--> B --1,1--> C instead:
        // q=(1,2,2); over [B,C] gcd 2; TNSE(B,C)=2 so cost 1.
        let mut g2 = SdfGraph::new("t2");
        let a2 = g2.add_actor("A");
        let b2 = g2.add_actor("B");
        let c2 = g2.add_actor("C");
        g2.add_edge(a2, b2, 4, 2).unwrap();
        g2.add_edge(b2, c2, 1, 1).unwrap();
        let q2 = RepetitionsVector::compute(&g2).unwrap();
        let t2 = ChainTables::build(&g2, &q2, &[a2, b2, c2]).unwrap();
        assert_eq!(t2.gcd_range(1, 2), 2);
        assert_eq!(t2.split_cost(1, 1, 2), 1);
        assert_eq!(t2.split_cost_unfactored(1, 1, 2), 2);
    }

    #[test]
    fn delays_add_to_split_cost() {
        let mut g = SdfGraph::new("d");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge_with_delay(a, b, 1, 1, 5).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let t = ChainTables::build(&g, &q, &[a, b]).unwrap();
        assert_eq!(t.split_cost(0, 0, 1), 1 + 5);
        assert_eq!(t.crossing_delay(0, 0, 1), 5);
    }

    #[test]
    fn backward_edge_rejected() {
        let (g, q, order) = chain3();
        let reversed: Vec<_> = order.iter().rev().copied().collect();
        assert!(matches!(
            ChainTables::build(&g, &q, &reversed),
            Err(SdfError::InvalidSchedule(_))
        ));
    }

    #[test]
    fn non_permutation_rejected() {
        let (g, q, order) = chain3();
        let bad = vec![order[0], order[0], order[2]];
        assert!(ChainTables::build(&g, &q, &bad).is_err());
        assert!(ChainTables::build(&g, &q, &order[..2]).is_err());
    }

    /// Homogeneous chain (`q` all 1) with the given per-edge delays.
    fn delay_chain(name: &str, delays: &[u64]) -> ChainTables {
        let mut g = SdfGraph::new(name);
        let ids: Vec<_> = (0..=delays.len())
            .map(|i| g.add_actor(format!("a{i}")))
            .collect();
        for (w, &d) in delays.iter().enumerate() {
            g.add_edge_with_delay(ids[w], ids[w + 1], 1, 1, d).unwrap();
        }
        let q = RepetitionsVector::compute(&g).unwrap();
        ChainTables::build_hashed(&g, &q, &ids).unwrap()
    }

    #[test]
    fn hasher_keys_are_translation_invariant() {
        // Delay pattern 5,0,0,5,0,0: windows [0..=1] and [3..=4] hold
        // identical content at different positions, [1..=2] does not.
        let t = delay_chain("shift", &[5, 0, 0, 5, 0, 0]);
        let h = t.hasher().expect("hashed build");
        assert_eq!(h.subchain_key(0, 1, 1), h.subchain_key(3, 4, 1));
        assert_eq!(h.subchain_key(0, 2, 1), h.subchain_key(3, 5, 1));
        assert_ne!(h.subchain_key(0, 1, 1), h.subchain_key(1, 2, 1));
        // Length and domain tag are part of the key.
        assert_ne!(h.subchain_key(0, 1, 1), h.subchain_key(0, 2, 1));
        assert_ne!(h.subchain_key(0, 1, 1), h.subchain_key(0, 1, 2));
    }

    #[test]
    fn hasher_keys_match_across_graphs() {
        // The same subchain content reached from two different graphs
        // produces the same key — the property that lets an edited
        // graph's untouched segments hit entries its ancestor inserted.
        let long = delay_chain("long", &[0, 0, 7, 0, 0]);
        let short = delay_chain("short", &[0, 7, 0]);
        let hl = long.hasher().unwrap();
        let hs = short.hasher().unwrap();
        assert_eq!(hl.subchain_key(1, 4, 1), hs.subchain_key(0, 3, 1));
        assert_eq!(hl.subchain_key(2, 3, 1), hs.subchain_key(1, 2, 1));
        assert_ne!(hl.subchain_key(0, 3, 1), hs.subchain_key(0, 3, 1));
    }

    #[test]
    fn hasher_sees_rates_delays_and_multiplicity() {
        let base = delay_chain("base", &[0, 0, 0]);
        let delayed = delay_chain("delayed", &[0, 1, 0]);
        let hb = base.hasher().unwrap();
        let hd = delayed.hasher().unwrap();
        assert_ne!(hb.subchain_key(0, 3, 1), hd.subchain_key(0, 3, 1));
        // A rate change alters q and TNSE inside the window.
        let mut g = SdfGraph::new("rates");
        let ids: Vec<_> = (0..4).map(|i| g.add_actor(format!("a{i}"))).collect();
        g.add_edge(ids[0], ids[1], 2, 3).unwrap();
        g.add_edge(ids[1], ids[2], 1, 1).unwrap();
        g.add_edge(ids[2], ids[3], 1, 1).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let t = ChainTables::build_hashed(&g, &q, &ids).unwrap();
        assert_ne!(
            t.hasher().unwrap().subchain_key(0, 3, 1),
            hb.subchain_key(0, 3, 1)
        );
        // Parallel-edge multiplicity with equal aggregates still differs
        // through the count matrix.
        let mut g1 = SdfGraph::new("single");
        let a1 = g1.add_actor("A");
        let b1 = g1.add_actor("B");
        g1.add_edge(a1, b1, 2, 2).unwrap();
        let q1 = RepetitionsVector::compute(&g1).unwrap();
        let t1 = ChainTables::build_hashed(&g1, &q1, &[a1, b1]).unwrap();
        let mut g2 = SdfGraph::new("double");
        let a2 = g2.add_actor("A");
        let b2 = g2.add_actor("B");
        g2.add_edge(a2, b2, 1, 1).unwrap();
        g2.add_edge(a2, b2, 1, 1).unwrap();
        let q2 = RepetitionsVector::compute(&g2).unwrap();
        let t2 = ChainTables::build_hashed(&g2, &q2, &[a2, b2]).unwrap();
        assert_ne!(
            t1.hasher().unwrap().subchain_key(0, 1, 1),
            t2.hasher().unwrap().subchain_key(0, 1, 1)
        );
    }

    #[test]
    fn plain_build_skips_the_hasher() {
        let (g, q, order) = chain3();
        let t = ChainTables::build(&g, &q, &order).unwrap();
        assert!(t.hasher().is_none());
        let th = ChainTables::build_hashed(&g, &q, &order).unwrap();
        assert!(th.hasher().is_some());
        // Hashed tables answer every query identically.
        assert_eq!(t.gcd_range(0, 2), th.gcd_range(0, 2));
        assert_eq!(t.crossing_tnse(0, 0, 2), th.crossing_tnse(0, 0, 2));
        assert_eq!(t.split_cost(0, 1, 2), th.split_cost(0, 1, 2));
    }

    #[test]
    fn odd_base_inverses_are_exact() {
        for f in 0..2 {
            for base in [HASH_B[f], HASH_C[f]] {
                assert_eq!(base.wrapping_mul(inv_u64(base)), 1);
            }
        }
    }

    #[test]
    fn multi_edges_aggregate() {
        let mut g = SdfGraph::new("m");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge(a, b, 1, 1).unwrap();
        g.add_edge(a, b, 2, 2).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let t = ChainTables::build(&g, &q, &[a, b]).unwrap();
        assert_eq!(t.crossing_tnse(0, 0, 1), 3);
        assert_eq!(t.crossing_count(0, 0, 1), 2);
    }
}
