//! Shared tables for the dynamic programs over a lexical ordering.
//!
//! Both DPPO (Eq. 2–4) and SDPPO (Eq. 5) repeatedly need, for a subchain
//! `x_i … x_j` of the lexical order split after position `k`:
//!
//! * `g[i][j] = gcd(q(x_i), …, q(x_j))`;
//! * the total TNSE and total delay of split-crossing edges
//!   (`src ∈ [i..k]`, `snk ∈ [k+1..j]`), and whether any exist.
//!
//! The crossing-edge aggregates are rectangle sums over a position-indexed
//! edge-weight matrix, answered in O(1) from 2-D prefix sums.

use sdf_core::error::SdfError;
use sdf_core::graph::{ActorId, SdfGraph};
use sdf_core::math::gcd;
use sdf_core::repetitions::RepetitionsVector;

/// Precomputed tables for DP over one lexical ordering of an SDF graph.
#[derive(Debug)]
pub struct ChainTables {
    n: usize,
    /// `order[p]` is the actor at lexical position `p`.
    order: Vec<ActorId>,
    /// gcd table, row-major `g[i*n + j]` for `i <= j`.
    g: Vec<u64>,
    /// 2-D prefix sums of TNSE between positions, `(n+1)×(n+1)`.
    tnse_ps: Vec<u64>,
    /// 2-D prefix sums of delays between positions.
    delay_ps: Vec<u64>,
    /// 2-D prefix sums of edge counts between positions.
    count_ps: Vec<u64>,
}

impl ChainTables {
    /// Builds the tables for `order`, which must be a permutation of the
    /// graph's actors consistent with edge directions (every edge's source
    /// precedes its sink; edges violating this are rejected because the DP
    /// cost model is only meaningful for forward edges).
    ///
    /// # Errors
    ///
    /// * [`SdfError::InvalidSchedule`] if `order` is not a permutation of
    ///   the actors or some edge points backwards in it.
    pub fn build(
        graph: &SdfGraph,
        q: &RepetitionsVector,
        order: &[ActorId],
    ) -> Result<Self, SdfError> {
        let n = graph.actor_count();
        if order.len() != n {
            return Err(SdfError::InvalidSchedule(format!(
                "lexical order has {} actors, graph has {}",
                order.len(),
                n
            )));
        }
        let mut pos = vec![usize::MAX; n];
        for (p, &a) in order.iter().enumerate() {
            if a.index() >= n || pos[a.index()] != usize::MAX {
                return Err(SdfError::InvalidSchedule(
                    "lexical order is not a permutation of the actors".into(),
                ));
            }
            pos[a.index()] = p;
        }

        // Edge weights keyed by (source position, sink position).
        let mut tnse = vec![0u64; n * n];
        let mut delay = vec![0u64; n * n];
        let mut count = vec![0u64; n * n];
        for (id, e) in graph.edges() {
            let ps = pos[e.src.index()];
            let pt = pos[e.snk.index()];
            if ps >= pt {
                return Err(SdfError::InvalidSchedule(format!(
                    "edge {id} points backwards in the lexical order",
                )));
            }
            tnse[ps * n + pt] += q.tnse(graph, id);
            delay[ps * n + pt] += e.delay;
            count[ps * n + pt] += 1;
        }

        let mut g = vec![0u64; n * n];
        for i in 0..n {
            g[i * n + i] = q.get(order[i]);
            for j in (i + 1)..n {
                g[i * n + j] = gcd(g[i * n + j - 1], q.get(order[j]));
            }
        }

        // The engine shares one build across every candidate with the
        // same lexical order, so the build count is a direct measure of
        // that reuse — the sentinel gates on it.
        sdf_trace::counter_inc("sched.chain_tables.builds");
        Ok(ChainTables {
            n,
            order: order.to_vec(),
            g,
            tnse_ps: prefix_sums(&tnse, n),
            delay_ps: prefix_sums(&delay, n),
            count_ps: prefix_sums(&count, n),
        })
    }

    /// Number of actors in the chain.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns true if the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The actor at lexical position `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= len()`.
    pub fn actor(&self, p: usize) -> ActorId {
        self.order[p]
    }

    /// The lexical order the tables were built for.
    pub fn order(&self) -> &[ActorId] {
        &self.order
    }

    /// `gcd(q(x_i), …, q(x_j))`, inclusive on both ends.
    ///
    /// # Panics
    ///
    /// Panics unless `i <= j < len()`.
    pub fn gcd_range(&self, i: usize, j: usize) -> u64 {
        assert!(i <= j && j < self.n);
        self.g[i * self.n + j]
    }

    /// Sum of TNSE over edges with source position in `[i..=k]` and sink
    /// position in `[k+1..=j]` (Eq. 4's crossing set).
    pub fn crossing_tnse(&self, i: usize, k: usize, j: usize) -> u64 {
        rect(&self.tnse_ps, self.n, i, k, k + 1, j)
    }

    /// Sum of delays over the crossing edges.
    pub fn crossing_delay(&self, i: usize, k: usize, j: usize) -> u64 {
        rect(&self.delay_ps, self.n, i, k, k + 1, j)
    }

    /// Number of crossing edges.
    pub fn crossing_count(&self, i: usize, k: usize, j: usize) -> u64 {
        rect(&self.count_ps, self.n, i, k, k + 1, j)
    }

    /// The split cost of Eq. 3: crossing TNSE divided by the subchain gcd,
    /// plus crossing delays (each crossing buffer holds its initial tokens
    /// on top of one split-iteration's production).
    pub fn split_cost(&self, i: usize, k: usize, j: usize) -> u64 {
        self.crossing_tnse(i, k, j) / self.gcd_range(i, j) + self.crossing_delay(i, k, j)
    }

    /// Aggregate `(TNSE, delay)` of the parallel edges from position `u`
    /// to position `v` — the windowed DP's per-pair lower-bound inputs.
    pub(crate) fn pair_weights(&self, u: usize, v: usize) -> (u64, u64) {
        (
            rect(&self.tnse_ps, self.n, u, u, v, v),
            rect(&self.delay_ps, self.n, u, u, v, v),
        )
    }

    /// The unfactored split cost: full-period crossing TNSE plus delays
    /// (used when a loop is deliberately left unfactored, §5.1).
    ///
    /// The production is still divided by any gcd an *enclosing* factored
    /// loop would extract; at DP level the convention is that the subchain
    /// fires each actor `q(x)` times, so the unfactored cost is the full
    /// TNSE.
    pub fn split_cost_unfactored(&self, i: usize, k: usize, j: usize) -> u64 {
        self.crossing_tnse(i, k, j) + self.crossing_delay(i, k, j)
    }
}

/// Builds `(n+1)×(n+1)` inclusive-exclusive 2-D prefix sums of an `n×n`
/// row-major matrix.
fn prefix_sums(m: &[u64], n: usize) -> Vec<u64> {
    let w = n + 1;
    let mut ps = vec![0u64; w * w];
    for r in 0..n {
        for c in 0..n {
            ps[(r + 1) * w + (c + 1)] =
                m[r * n + c] + ps[r * w + (c + 1)] + ps[(r + 1) * w + c] - ps[r * w + c];
        }
    }
    ps
}

/// Rectangle sum over rows `r1..=r2`, cols `c1..=c2` (saturating on empty
/// ranges).
fn rect(ps: &[u64], n: usize, r1: usize, r2: usize, c1: usize, c2: usize) -> u64 {
    if r1 > r2 || c1 > c2 || r1 >= n || c1 >= n {
        return 0;
    }
    let (r2, c2) = (r2.min(n - 1), c2.min(n - 1));
    let w = n + 1;
    ps[(r2 + 1) * w + (c2 + 1)] + ps[r1 * w + c1] - ps[r1 * w + (c2 + 1)] - ps[(r2 + 1) * w + c1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain3() -> (SdfGraph, RepetitionsVector, Vec<ActorId>) {
        // A --2,3--> B --1,2--> C : q = (3, 2, 1).
        let mut g = SdfGraph::new("chain3");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge(a, b, 2, 3).unwrap();
        g.add_edge(b, c, 1, 2).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        (g, q, vec![a, b, c])
    }

    #[test]
    fn gcd_table() {
        let (g, q, order) = chain3();
        let t = ChainTables::build(&g, &q, &order).unwrap();
        assert_eq!(t.gcd_range(0, 0), 3);
        assert_eq!(t.gcd_range(0, 1), 1);
        assert_eq!(t.gcd_range(1, 2), 1);
        assert_eq!(t.gcd_range(0, 2), 1);
    }

    #[test]
    fn crossing_sums() {
        let (g, q, order) = chain3();
        let t = ChainTables::build(&g, &q, &order).unwrap();
        // TNSE(A,B) = 2*3 = 6; TNSE(B,C) = 1*2 = 2.
        assert_eq!(t.crossing_tnse(0, 0, 2), 6);
        assert_eq!(t.crossing_tnse(0, 1, 2), 2);
        assert_eq!(t.crossing_tnse(0, 0, 1), 6);
        assert_eq!(t.crossing_count(0, 0, 2), 1);
        assert_eq!(t.crossing_count(0, 1, 2), 1);
    }

    #[test]
    fn split_cost_divides_by_gcd() {
        // A --10,5--> B: q = (1, 2), gcd 1 over [A,B]; TNSE = 10.
        let mut g = SdfGraph::new("t");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge(a, b, 10, 5).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let t = ChainTables::build(&g, &q, &[a, b]).unwrap();
        assert_eq!(t.split_cost(0, 0, 1), 10);
        // Scale so the gcd over the pair is 2: A --10,5--> B with q=(2,4)
        // can't happen (minimal). Use A --4,2--> B --1,1--> C instead:
        // q=(1,2,2); over [B,C] gcd 2; TNSE(B,C)=2 so cost 1.
        let mut g2 = SdfGraph::new("t2");
        let a2 = g2.add_actor("A");
        let b2 = g2.add_actor("B");
        let c2 = g2.add_actor("C");
        g2.add_edge(a2, b2, 4, 2).unwrap();
        g2.add_edge(b2, c2, 1, 1).unwrap();
        let q2 = RepetitionsVector::compute(&g2).unwrap();
        let t2 = ChainTables::build(&g2, &q2, &[a2, b2, c2]).unwrap();
        assert_eq!(t2.gcd_range(1, 2), 2);
        assert_eq!(t2.split_cost(1, 1, 2), 1);
        assert_eq!(t2.split_cost_unfactored(1, 1, 2), 2);
    }

    #[test]
    fn delays_add_to_split_cost() {
        let mut g = SdfGraph::new("d");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge_with_delay(a, b, 1, 1, 5).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let t = ChainTables::build(&g, &q, &[a, b]).unwrap();
        assert_eq!(t.split_cost(0, 0, 1), 1 + 5);
        assert_eq!(t.crossing_delay(0, 0, 1), 5);
    }

    #[test]
    fn backward_edge_rejected() {
        let (g, q, order) = chain3();
        let reversed: Vec<_> = order.iter().rev().copied().collect();
        assert!(matches!(
            ChainTables::build(&g, &q, &reversed),
            Err(SdfError::InvalidSchedule(_))
        ));
    }

    #[test]
    fn non_permutation_rejected() {
        let (g, q, order) = chain3();
        let bad = vec![order[0], order[0], order[2]];
        assert!(ChainTables::build(&g, &q, &bad).is_err());
        assert!(ChainTables::build(&g, &q, &order[..2]).is_err());
    }

    #[test]
    fn multi_edges_aggregate() {
        let mut g = SdfGraph::new("m");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge(a, b, 1, 1).unwrap();
        g.add_edge(a, b, 2, 2).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let t = ChainTables::build(&g, &q, &[a, b]).unwrap();
        assert_eq!(t.crossing_tnse(0, 0, 1), 3);
        assert_eq!(t.crossing_count(0, 0, 1), 2);
    }
}
