//! SDPPO: the shared-buffer dynamic programming heuristic (§5, Eq. 5).
//!
//! Under the coarse shared-buffer model, the buffers of the left half of a
//! split are never live at the same time as the buffers of the right half,
//! so only their **maximum** (plus the split-crossing buffers) is needed:
//!
//! ```text
//! sb[i, j] = min_k  max(sb[i, k], sb[k+1, j]) + Σ_{e crossing k} size(e)
//! ```
//!
//! The factoring heuristic of §5.1 is applied: a merged loop is factored by
//! the subchain gcd only when internal (split-crossing) edges exist —
//! factoring without internal edges cannot shrink any buffer but does
//! destroy the disjointness that lets lifetimes overlay (Fig. 7).

use sdf_core::error::SdfError;
use sdf_core::graph::{ActorId, SdfGraph};
use sdf_core::repetitions::RepetitionsVector;
use sdf_core::schedule::SasTree;

use crate::chain::ChainTables;
use crate::dpwin::{self, DpMode};
use crate::memo::{MemoStore, DOMAIN_SDPPO_ALWAYS, DOMAIN_SDPPO_HEURISTIC, DOMAIN_SDPPO_NEVER};
use crate::treebuild::{build_tree, SplitDecision};

/// When a merged loop should be factored by the subchain gcd (§5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FactoringPolicy {
    /// Factor only when the split has internal (crossing) edges — the
    /// paper's heuristic.
    #[default]
    Heuristic,
    /// Always factor (the non-shared DPPO behaviour); ablation baseline.
    Always,
    /// Never factor; ablation baseline.
    Never,
}

impl FactoringPolicy {
    fn factors(self, crossing_edges: u64) -> bool {
        match self {
            FactoringPolicy::Heuristic => crossing_edges > 0,
            FactoringPolicy::Always => true,
            FactoringPolicy::Never => false,
        }
    }

    /// The cross-run memo domain tag: each policy prices crossings
    /// differently, so their DP cells must never share entries.
    pub fn memo_tag(self) -> u8 {
        match self {
            FactoringPolicy::Heuristic => DOMAIN_SDPPO_HEURISTIC,
            FactoringPolicy::Always => DOMAIN_SDPPO_ALWAYS,
            FactoringPolicy::Never => DOMAIN_SDPPO_NEVER,
        }
    }
}

/// The result of an SDPPO run.
#[derive(Clone, Debug)]
pub struct SdppoResult {
    /// The optimised schedule tree.
    pub tree: SasTree,
    /// The Eq. 5 shared-buffer cost estimate of the schedule.
    pub shared_cost: u64,
}

/// Runs the Eq. 5 shared-buffer DP on `order` with the default (paper)
/// factoring policy.
///
/// # Errors
///
/// Same as [`crate::dppo::dppo`].
///
/// # Examples
///
/// ```
/// use sdf_core::{SdfGraph, RepetitionsVector};
/// use sdf_sched::sdppo::sdppo;
///
/// # fn main() -> Result<(), sdf_core::SdfError> {
/// let mut g = SdfGraph::new("fig2");
/// let a = g.add_actor("A");
/// let b = g.add_actor("B");
/// let c = g.add_actor("C");
/// g.add_edge(a, b, 20, 10)?;
/// g.add_edge(b, c, 20, 10)?;
/// let q = RepetitionsVector::compute(&g)?;
/// let shared = sdppo(&g, &q, &[a, b, c])?;
/// // max(0, max(0,0)+20) + 20 = 40 under Eq. 5.
/// assert_eq!(shared.shared_cost, 40);
/// # Ok(())
/// # }
/// ```
pub fn sdppo(
    graph: &SdfGraph,
    q: &RepetitionsVector,
    order: &[ActorId],
) -> Result<SdppoResult, SdfError> {
    sdppo_with_policy(graph, q, order, FactoringPolicy::Heuristic)
}

/// Runs the Eq. 5 shared-buffer DP with an explicit factoring policy.
///
/// # Errors
///
/// Same as [`crate::dppo::dppo`].
pub fn sdppo_with_policy(
    graph: &SdfGraph,
    q: &RepetitionsVector,
    order: &[ActorId],
    policy: FactoringPolicy,
) -> Result<SdppoResult, SdfError> {
    if graph.actor_count() == 0 {
        return Err(SdfError::EmptyGraph);
    }
    let ct = ChainTables::build(graph, q, order)?;
    Ok(sdppo_from_tables(&ct, q, policy, DpMode::default()))
}

/// Runs the Eq. 5 DP over prebuilt [`ChainTables`] with an explicit
/// factoring policy and [`DpMode`], so candidates sharing a lexical order
/// share the O(n²) gcd/prefix-sum work.
///
/// # Panics
///
/// Panics if `ct` is empty (callers validate via [`ChainTables::build`]).
pub fn sdppo_from_tables(
    ct: &ChainTables,
    q: &RepetitionsVector,
    policy: FactoringPolicy,
    mode: DpMode,
) -> SdppoResult {
    sdppo_from_tables_memo(ct, q, policy, mode, None)
}

/// [`sdppo_from_tables`] with an optional cross-run [`MemoStore`], keyed
/// under the policy's [`FactoringPolicy::memo_tag`].  Requires tables
/// built via [`ChainTables::build_hashed`] and [`DpMode::Windowed`] for
/// the memo to engage; results are bit-identical with or without it.
///
/// # Panics
///
/// Panics if `ct` is empty (callers validate via [`ChainTables::build`]).
pub fn sdppo_from_tables_memo(
    ct: &ChainTables,
    q: &RepetitionsVector,
    policy: FactoringPolicy,
    mode: DpMode,
    memo: Option<&MemoStore>,
) -> SdppoResult {
    assert!(!ct.is_empty(), "SDPPO needs at least one actor");
    let _span = sdf_trace::span!("sched.sdppo", actors = ct.len());
    let n = ct.len();
    // The factoring decision is a pure function of (i, k, j), so the DP
    // table only needs the argmin k; `factored` is re-derived on demand.
    let crossing = |i: usize, k: usize, j: usize| -> u64 {
        if policy.factors(ct.crossing_count(i, k, j)) {
            ct.split_cost(i, k, j)
        } else {
            ct.split_cost_unfactored(i, k, j)
        }
    };
    let mut solver = dpwin::Solver::new_memo(
        ct,
        mode,
        dpwin::Combine::Max,
        crossing,
        memo.map(|s| (s, policy.memo_tag())),
    );
    let shared_cost = solver.value(0, n - 1);
    // As in DPPO, tree decisions read argmin splits straight from the
    // solver — the windowed tie-break provably matches the exact scan's.
    let solver = std::cell::RefCell::new(solver);
    let factored_splits = std::cell::Cell::new(0u64);
    let tree = build_tree(ct, q, &|i, j| {
        let k = solver.borrow_mut().tree_split(i, j);
        let factored = policy.factors(ct.crossing_count(i, k, j));
        if factored {
            factored_splits.set(factored_splits.get() + 1);
        }
        SplitDecision { k, factored }
    });
    if sdf_trace::enabled() {
        // Actual probes, not the closed form — the windowed scan does far
        // fewer and the regression sentinel gates on this counter.
        let nn = n as u64;
        sdf_trace::counter_inc("sched.sdppo.runs");
        sdf_trace::counter_add("sched.sdppo.cells", nn * (nn - 1) / 2);
        sdf_trace::counter_add("sched.sdppo.split_probes", solver.borrow().probes());
        // Factored decisions the schedule actually takes (one candidate
        // per tree split) — the lazy windowed table no longer materialises
        // every cell, so the old whole-table census is gone.
        sdf_trace::counter_add("sched.sdppo.factored_splits", factored_splits.get());
    }
    SdppoResult { tree, shared_cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dppo::dppo;
    use sdf_core::simulate::validate_schedule;

    fn fig2() -> (SdfGraph, Vec<ActorId>, RepetitionsVector) {
        let mut g = SdfGraph::new("fig2");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge(a, b, 20, 10).unwrap();
        g.add_edge(b, c, 20, 10).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        (g, vec![a, b, c], q)
    }

    #[test]
    fn shared_cost_never_exceeds_nonshared() {
        let (g, order, q) = fig2();
        let shared = sdppo(&g, &q, &order).unwrap();
        let nonshared = dppo(&g, &q, &order).unwrap();
        assert!(shared.shared_cost <= nonshared.bufmem);
    }

    #[test]
    fn produces_valid_schedule_every_policy() {
        let (g, order, q) = fig2();
        for policy in [
            FactoringPolicy::Heuristic,
            FactoringPolicy::Always,
            FactoringPolicy::Never,
        ] {
            let r = sdppo_with_policy(&g, &q, &order, policy).unwrap();
            r.tree.validate(&g, &q).unwrap();
            validate_schedule(&g, &r.tree.to_looped_schedule(), &q).unwrap();
        }
    }

    #[test]
    fn disconnected_halves_overlay() {
        // Two independent producer-consumer pairs: under the shared model
        // the best schedule runs one pair to completion then the other, and
        // pays only the max of the two buffers.
        let mut g = SdfGraph::new("pairs");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        let d = g.add_actor("D");
        g.add_edge(a, b, 10, 10).unwrap();
        g.add_edge(c, d, 4, 4).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let shared = sdppo(&g, &q, &[a, b, c, d]).unwrap();
        assert_eq!(shared.shared_cost, 10); // max(10, 4)
        let nonshared = dppo(&g, &q, &[a, b, c, d]).unwrap();
        assert_eq!(nonshared.bufmem, 14); // 10 + 4
    }

    #[test]
    fn heuristic_does_not_factor_edgeless_split() {
        // Same two-pair graph: the top-level split between B and C crosses
        // no edges, so the heuristic must leave it unfactored even though
        // gcd of all repetition counts is 1 (factoring is a no-op here);
        // contrast with rates that give a shared gcd.
        let mut g = SdfGraph::new("pairs2");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        let d = g.add_actor("D");
        // q = (2, 2, 2, 2): common factor 2 exists across the split.
        g.add_edge(a, b, 1, 1).unwrap();
        g.add_edge(c, d, 1, 1).unwrap();
        let mut q_raw = vec![2u64; 4];
        // Force q = (2,2,2,2) by adding a rate-2 source feeding A and C.
        let s = g.add_actor("S");
        g.add_edge(s, a, 2, 1).unwrap();
        g.add_edge(s, c, 2, 1).unwrap();
        q_raw.push(1);
        let q = RepetitionsVector::compute(&g).unwrap();
        assert_eq!(q.as_slice(), &q_raw[..]);
        let r = sdppo(&g, &q, &[s, a, b, c, d]).unwrap();
        // The split between the (A,B) block and the (C,D) block crosses no
        // edge; schedule should keep those blocks sequential:
        // e.g. S(2AB)(2CD) rather than S(2ABCD).
        let text = r.tree.to_looped_schedule().display(&g).to_string();
        assert!(
            !text.contains("A B C D"),
            "A,B and C,D should not share one loop: {text}"
        );
        r.tree.validate(&g, &q).unwrap();
    }

    #[test]
    fn fig4_shared_vs_nonshared_schedules_differ() {
        // §5 Fig. 4's point: the shared-optimal schedule need not be the
        // non-shared-optimal one.  We assert the costs are consistent:
        // shared cost of shared-opt <= shared cost of non-shared-opt tree.
        let mut g = SdfGraph::new("fig4ish");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        let d = g.add_actor("D");
        g.add_edge(a, b, 3, 2).unwrap();
        g.add_edge(b, c, 5, 3).unwrap();
        g.add_edge(c, d, 2, 5).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let order = vec![a, b, c, d];
        let shared = sdppo(&g, &q, &order).unwrap();
        let nonshared = dppo(&g, &q, &order).unwrap();
        assert!(shared.shared_cost <= nonshared.bufmem);
        shared.tree.validate(&g, &q).unwrap();
    }

    #[test]
    fn never_policy_costs_at_least_heuristic() {
        let (g, order, q) = fig2();
        let heuristic = sdppo_with_policy(&g, &q, &order, FactoringPolicy::Heuristic).unwrap();
        let never = sdppo_with_policy(&g, &q, &order, FactoringPolicy::Never).unwrap();
        assert!(never.shared_cost >= heuristic.shared_cost);
    }

    #[test]
    fn windowed_matches_exact_every_policy() {
        let mut g = SdfGraph::new("fig4ish");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        let d = g.add_actor("D");
        g.add_edge(a, b, 3, 2).unwrap();
        g.add_edge(b, c, 5, 3).unwrap();
        g.add_edge(c, d, 2, 5).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let order = [a, b, c, d];
        let ct = ChainTables::build(&g, &q, &order).unwrap();
        for policy in [
            FactoringPolicy::Heuristic,
            FactoringPolicy::Always,
            FactoringPolicy::Never,
        ] {
            let exact = sdppo_from_tables(&ct, &q, policy, DpMode::Exact);
            let windowed = sdppo_from_tables(&ct, &q, policy, DpMode::Windowed);
            assert_eq!(exact.shared_cost, windowed.shared_cost, "{policy:?}");
            assert_eq!(exact.tree, windowed.tree, "{policy:?}");
        }
    }

    #[test]
    fn memo_never_leaks_across_policies() {
        // All three policies share one store but carry distinct domain
        // tags; each must reproduce its own cold result even after the
        // others have populated the store with the same subchains.
        let mut g = SdfGraph::new("fig4ish");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        let d = g.add_actor("D");
        g.add_edge(a, b, 3, 2).unwrap();
        g.add_edge(b, c, 5, 3).unwrap();
        g.add_edge(c, d, 2, 5).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let order = [a, b, c, d];
        let ct = ChainTables::build_hashed(&g, &q, &order).unwrap();
        let store = crate::memo::MemoStore::new();
        for policy in [
            FactoringPolicy::Heuristic,
            FactoringPolicy::Always,
            FactoringPolicy::Never,
        ] {
            let cold = sdppo_from_tables(&ct, &q, policy, DpMode::Windowed);
            let memoed = sdppo_from_tables_memo(&ct, &q, policy, DpMode::Windowed, Some(&store));
            let warm = sdppo_from_tables_memo(&ct, &q, policy, DpMode::Windowed, Some(&store));
            assert_eq!(cold.shared_cost, memoed.shared_cost, "{policy:?}");
            assert_eq!(cold.tree, memoed.tree, "{policy:?}");
            assert_eq!(cold.tree, warm.tree, "{policy:?} warm");
        }
        // DPPO shares the store too, under its own tag.
        let dp_cold = crate::dppo::dppo_from_tables(&ct, &q, DpMode::Windowed);
        let dp_memo = crate::dppo::dppo_from_tables_memo(&ct, &q, DpMode::Windowed, Some(&store));
        assert_eq!(dp_cold.bufmem, dp_memo.bufmem);
        assert_eq!(dp_cold.tree, dp_memo.tree);
    }

    #[test]
    fn memo_ignored_in_exact_mode_and_without_hasher() {
        let (g, order, q) = fig2();
        let store = crate::memo::MemoStore::new();
        // Plain tables: no hasher, memo must disengage silently.
        let ct = ChainTables::build(&g, &q, &order).unwrap();
        let r = sdppo_from_tables_memo(
            &ct,
            &q,
            FactoringPolicy::Heuristic,
            DpMode::Windowed,
            Some(&store),
        );
        assert_eq!(r.shared_cost, 40);
        assert!(store.is_empty(), "memo engaged without a hasher");
        // Hashed tables but exact mode: exact stays the reference path.
        let cth = ChainTables::build_hashed(&g, &q, &order).unwrap();
        let r = sdppo_from_tables_memo(
            &cth,
            &q,
            FactoringPolicy::Heuristic,
            DpMode::Exact,
            Some(&store),
        );
        assert_eq!(r.shared_cost, 40);
        assert!(store.is_empty(), "memo engaged in exact mode");
    }

    #[test]
    fn single_actor() {
        let mut g = SdfGraph::new("one");
        let a = g.add_actor("A");
        let q = RepetitionsVector::compute(&g).unwrap();
        let r = sdppo(&g, &q, &[a]).unwrap();
        assert_eq!(r.shared_cost, 0);
    }
}
