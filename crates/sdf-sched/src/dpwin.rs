//! Execution modes and the shared lazy solver for the chain DPs.
//!
//! Both DPPO (Eqs. 2–4) and SDPPO (Eq. 5) minimise, for every subchain
//! `[i..=j]` of the lexical order, over a split position `k ∈ [i, j)`:
//!
//! ```text
//! v[i, j] = min_k  combine(v[i, k], v[k+1, j]) + crossing(i, k, j)
//! ```
//!
//! where `combine` is `+` for DPPO and `max` for SDPPO.  [`DpMode`]
//! selects how that minimisation is carried out:
//!
//! * [`DpMode::Exact`] fills the whole triangular table bottom-up and
//!   scans every `k` — Θ(n³) crossing-cost probes, the textbook
//!   recurrence.
//! * [`DpMode::Windowed`] computes cells lazily, narrowing each cell's
//!   scan with an admissible lower bound and resolving candidates
//!   best-first, so only splits whose optimistic score could still win are
//!   ever evaluated exactly.
//!
//! # Why not the Knuth–Yao split window
//!
//! The classic restriction `k ∈ [split[i][j−1], split[i+1][j]]` needs the
//! cost family to satisfy the quadrangle inequality, and the DPPO crossing
//! cost does not: the crossing TNSE is divided by the subchain gcd, which
//! changes non-monotonically with the span.  On random rate-changing
//! chains a static window (even with boundary-widening fallback) returned
//! wrong values on ~5 % of instances, so it was rejected for the
//! bound-guided scan below, which is exact by construction.
//!
//! # The admissible bound
//!
//! For every position pair `(u, v)` the solver precomputes
//!
//! ```text
//! lb(u, v) = pair_tnse(u, v) / gcd(q[u..=v]) + pair_delay(u, v)
//! ```
//!
//! In any R-schedule of a span containing both positions, the edges
//! `u → v` cross exactly one split, whose enclosing span `[lo, hi]`
//! contains `[u, v]`; since `gcd(q[lo..=hi])` divides `gcd(q[u..=v])`,
//! those edges pay at least `lb(u, v)` there.  Dense O(n²) recurrences
//! then give `LB[i][j] ≤ v[i, j]`: the sum of `lb` over pairs inside the
//! span for [`Combine::Sum`] (every pair crosses exactly one split), the
//! max for [`Combine::Max`] (every pair's split cost survives at least one
//! `max` chain to the root).  Both DP cost families dominate the bound —
//! DPPO's factored crossing cost and both SDPPO factoring policies charge
//! each crossing edge at least its `lb` share.
//!
//! # The best-first scan
//!
//! Each cell pushes every candidate `k` into a min-heap keyed by
//! `(optimistic score, k, resolved)` where the optimistic score is
//! `combine(LB[i,k], LB[k+1,j]) + crossing(i, k, j)`.  Popping an
//! unresolved candidate computes its children exactly (recursing into
//! this same scan) and re-pushes its true cost; the first *resolved* pop
//! is the cell's answer.  The tuple ordering makes the returned `k` the
//! smallest argmin — any candidate with a smaller true cost, or an equal
//! cost and smaller `k`, would have popped first — which is exactly the
//! tie-break of the ascending exact scan.  Values **and** split tables
//! are therefore byte-for-byte identical to [`DpMode::Exact`] (enforced
//! by tests over the registry and random chains), and the worst case per
//! cell degrades to the full scan plus heap overhead.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::str::FromStr;

use crate::chain::ChainTables;
use crate::memo::{MemoEntry, MemoStore};

/// How the chain DPs scan split positions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum DpMode {
    /// Probe every split `k ∈ [i, j)` — Θ(n³) total probes.
    Exact,
    /// Lazy bound-guided best-first scan — same values and schedule trees
    /// as [`DpMode::Exact`], far fewer probes on long chains.
    #[default]
    Windowed,
}

impl DpMode {
    /// Both modes, exact first.
    pub const ALL: [DpMode; 2] = [DpMode::Exact, DpMode::Windowed];

    /// Short lower-case name (`exact`, `windowed`).
    pub fn as_str(self) -> &'static str {
        match self {
            DpMode::Exact => "exact",
            DpMode::Windowed => "windowed",
        }
    }
}

impl fmt::Display for DpMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for DpMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "exact" => Ok(DpMode::Exact),
            "windowed" => Ok(DpMode::Windowed),
            other => Err(format!(
                "unknown DP mode `{other}` (expected exact or windowed)"
            )),
        }
    }
}

/// How a split's two child costs merge into the parent cost.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Combine {
    /// DPPO: the children's buffers coexist, costs add.
    Sum,
    /// SDPPO: the children's buffers overlay, only the max survives.
    Max,
}

impl Combine {
    fn apply(self, l: u64, r: u64) -> u64 {
        match self {
            Combine::Sum => l.saturating_add(r),
            Combine::Max => l.max(r),
        }
    }
}

/// Uncomputed-cell sentinel.  Real costs are assumed to stay below it —
/// the same no-overflow assumption the dense recurrence always made.
const UNSET: u64 = u64::MAX;

/// The chain-DP driver: a triangular value/split table filled either
/// densely ([`DpMode::Exact`]) or lazily ([`DpMode::Windowed`]).
///
/// `crossing(i, k, j)` must be a pure function of its arguments and must
/// dominate the per-pair lower bounds described in the module docs (all
/// crate cost models do).
pub(crate) struct Solver<'a, C: Fn(usize, usize, usize) -> u64> {
    ct: &'a ChainTables,
    mode: DpMode,
    combine: Combine,
    crossing: C,
    /// Cross-run memo: the store and this DP's domain tag.  Only active
    /// in windowed mode on tables built with a content hasher; a hit
    /// replays exactly the (value, smallest-argmin split) the scan below
    /// would recompute, so results are bit-identical either way.
    memo: Option<(&'a MemoStore, u8)>,
    /// Admissible lower bounds `LB[i*n + j]`; empty in exact mode.
    lb: Vec<u64>,
    /// `v[i*n + j]` for `i <= j`; diagonal 0, [`UNSET`] where unfilled.
    value: Vec<u64>,
    /// Smallest argmin split per computed cell, `split[i*n + j]`.
    split: Vec<usize>,
    /// Crossing-cost evaluations so far (the `split_probes` counter).
    probes: u64,
}

impl<'a, C: Fn(usize, usize, usize) -> u64> Solver<'a, C> {
    #[cfg(test)]
    pub(crate) fn new(ct: &'a ChainTables, mode: DpMode, combine: Combine, crossing: C) -> Self {
        Self::new_memo(ct, mode, combine, crossing, None)
    }

    /// [`Solver::new`] with an optional cross-run memo.  The memo is
    /// ignored in exact mode (which stays the verification reference)
    /// and on tables built without a hasher.
    pub(crate) fn new_memo(
        ct: &'a ChainTables,
        mode: DpMode,
        combine: Combine,
        crossing: C,
        memo: Option<(&'a MemoStore, u8)>,
    ) -> Self {
        let n = ct.len();
        let memo = match mode {
            DpMode::Windowed if ct.hasher().is_some() => memo,
            _ => None,
        };
        let mut s = Solver {
            ct,
            mode,
            combine,
            crossing,
            memo,
            lb: Vec::new(),
            value: vec![UNSET; n * n],
            split: vec![0; n * n],
            probes: 0,
        };
        for i in 0..n {
            s.value[i * n + i] = 0;
        }
        match mode {
            DpMode::Exact => s.fill_dense(),
            DpMode::Windowed => s.build_bounds(),
        }
        s
    }

    /// The textbook bottom-up fill, ascending `k` so ties resolve to the
    /// smallest argmin.
    fn fill_dense(&mut self) {
        let n = self.ct.len();
        for span in 1..n {
            for i in 0..(n - span) {
                let j = i + span;
                let mut best = UNSET;
                let mut best_k = i;
                for k in i..j {
                    self.probes += 1;
                    let cost = self
                        .combine
                        .apply(self.value[i * n + k], self.value[(k + 1) * n + j])
                        .saturating_add((self.crossing)(i, k, j));
                    if cost < best {
                        best = cost;
                        best_k = k;
                    }
                }
                self.value[i * n + j] = best;
                self.split[i * n + j] = best_k;
            }
        }
    }

    /// Fills `LB[i][j]` from the per-pair bounds in O(n²).
    fn build_bounds(&mut self) {
        let n = self.ct.len();
        let mut lb = vec![0u64; n * n];
        for span in 1..n {
            for i in 0..(n - span) {
                let j = i + span;
                let (t, d) = self.ct.pair_weights(i, j);
                let edge = t / self.ct.gcd_range(i, j) + d;
                lb[i * n + j] = match self.combine {
                    // Inclusion–exclusion over the pairs inside the span;
                    // the subtraction cannot underflow because the pair
                    // set of [i, j-1] contains that of [i+1, j-1].
                    Combine::Sum => (lb[i * n + (j - 1)] - lb[(i + 1) * n + (j - 1)])
                        .saturating_add(lb[(i + 1) * n + j])
                        .saturating_add(edge),
                    Combine::Max => lb[i * n + (j - 1)].max(lb[(i + 1) * n + j]).max(edge),
                };
            }
        }
        self.lb = lb;
    }

    /// The exact DP value of subchain `[i..=j]` (0 when `i >= j`),
    /// computing it on demand in windowed mode.
    pub(crate) fn value(&mut self, i: usize, j: usize) -> u64 {
        if i >= j {
            return 0;
        }
        let n = self.ct.len();
        let idx = i * n + j;
        if self.value[idx] != UNSET {
            return self.value[idx];
        }
        debug_assert!(
            matches!(self.mode, DpMode::Windowed),
            "dense fill missed cell ({i}, {j})"
        );
        // Cross-run memo probe: the key is a content hash of exactly the
        // inputs the scan below reads, so a hit short-circuits the cell
        // (and, transitively, every child it would have resolved).
        let key = self.memo.map(|(_, tag)| {
            self.ct
                .hasher()
                .expect("memo implies hasher")
                .subchain_key(i, j, tag)
        });
        if let (Some((store, _)), Some(key)) = (self.memo, key) {
            if let Some(entry) = store.lookup(&key) {
                self.value[idx] = entry.value;
                self.split[idx] = i + entry.split_rel as usize;
                return entry.value;
            }
        }
        let mut heap: BinaryHeap<Reverse<(u64, usize, bool)>> =
            BinaryHeap::with_capacity(j - i + 1);
        for k in i..j {
            self.probes += 1;
            let opt = self
                .combine
                .apply(self.lb[i * n + k], self.lb[(k + 1) * n + j])
                .saturating_add((self.crossing)(i, k, j));
            heap.push(Reverse((opt, k, false)));
        }
        loop {
            let Reverse((score, k, resolved)) = heap.pop().expect("candidate heap never drains");
            if resolved {
                self.value[idx] = score;
                self.split[idx] = k;
                if let (Some((store, _)), Some(key)) = (self.memo, key) {
                    store.insert(
                        key,
                        MemoEntry {
                            value: score,
                            split_rel: (k - i) as u32,
                        },
                    );
                }
                return score;
            }
            let l = self.value(i, k);
            let r = self.value(k + 1, j);
            self.probes += 1;
            let cost = self
                .combine
                .apply(l, r)
                .saturating_add((self.crossing)(i, k, j));
            heap.push(Reverse((cost, k, true)));
        }
    }

    /// The smallest argmin split of subchain `[i..=j]`, for tree
    /// construction.  Works in both modes: the windowed tie-break provably
    /// matches the exact scan's, and resolving a cell always computes the
    /// two children its tree decision will visit next.
    pub(crate) fn tree_split(&mut self, i: usize, j: usize) -> usize {
        debug_assert!(i < j);
        self.value(i, j);
        self.split[i * self.ct.len() + j]
    }

    /// Crossing-cost evaluations performed so far.
    pub(crate) fn probes(&self) -> u64 {
        self.probes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdf_core::graph::SdfGraph;
    use sdf_core::repetitions::RepetitionsVector;

    /// Chain graph from per-edge (produce, consume, delay) triples.
    fn chain_tables(edges: &[(u64, u64, u64)]) -> (SdfGraph, RepetitionsVector, ChainTables) {
        let mut g = SdfGraph::new("chain");
        let ids: Vec<_> = (0..=edges.len())
            .map(|i| g.add_actor(format!("a{i}")))
            .collect();
        for (w, &(p, c, d)) in edges.iter().enumerate() {
            g.add_edge_with_delay(ids[w], ids[w + 1], p, c, d).unwrap();
        }
        let q = RepetitionsVector::compute(&g).unwrap();
        let ct = ChainTables::build(&g, &q, &ids).unwrap();
        (g, q, ct)
    }

    fn cd_dat() -> (SdfGraph, RepetitionsVector, ChainTables) {
        chain_tables(&[(1, 1, 0), (2, 3, 0), (2, 7, 0), (8, 7, 0), (5, 1, 0)])
    }

    #[test]
    fn exact_probe_count_matches_closed_form() {
        let edges = vec![(1u64, 1u64, 0u64); 16];
        let (_, _, ct) = chain_tables(&edges);
        let n = ct.len();
        let mut s = Solver::new(&ct, DpMode::Exact, Combine::Sum, |i, k, j| {
            ct.split_cost(i, k, j)
        });
        s.value(0, n - 1);
        let n = n as u64;
        assert_eq!(s.probes(), n * (n * n - 1) / 6);
    }

    #[test]
    fn windowed_matches_exact_both_combines() {
        let (_, _, ct) = cd_dat();
        let n = ct.len();
        for combine in [Combine::Sum, Combine::Max] {
            let mut e = Solver::new(&ct, DpMode::Exact, combine, |i, k, j| {
                ct.split_cost(i, k, j)
            });
            let mut w = Solver::new(&ct, DpMode::Windowed, combine, |i, k, j| {
                ct.split_cost(i, k, j)
            });
            // Force every cell in the windowed solver and compare tables.
            for i in 0..n {
                for j in (i + 1)..n {
                    assert_eq!(e.value(i, j), w.value(i, j), "value ({i}, {j})");
                    assert_eq!(e.tree_split(i, j), w.tree_split(i, j), "split ({i}, {j})");
                }
            }
        }
    }

    #[test]
    fn windowed_root_probes_far_fewer_on_sparse_rate_changes() {
        // CD-DAT-style structure: long homogeneous filter stretches with
        // sparse sample-rate changers.  Inside a stretch the pair bound is
        // tight (the pair gcd equals every enclosing within-stretch span
        // gcd), so the best-first scan prunes hard; the bound only slackens
        // near the rate boundaries.  The adversarial opposite — every edge
        // changing rate — can degrade to ~2× the exact probes, which is
        // why `windowed_matches_exact_on_random_chains` (dppo.rs) asserts
        // equality of results, not probe wins, per instance.
        let edges: Vec<_> = (0..64)
            .map(|i| {
                if i % 16 == 8 {
                    if (i / 16) % 2 == 0 {
                        (2, 3, 0)
                    } else {
                        (3, 2, 0)
                    }
                } else {
                    (1, 1, 0)
                }
            })
            .collect();
        let (_, _, ct) = chain_tables(&edges);
        let n = ct.len();
        let mut e = Solver::new(&ct, DpMode::Exact, Combine::Sum, |i, k, j| {
            ct.split_cost(i, k, j)
        });
        let mut w = Solver::new(&ct, DpMode::Windowed, Combine::Sum, |i, k, j| {
            ct.split_cost(i, k, j)
        });
        assert_eq!(e.value(0, n - 1), w.value(0, n - 1));
        assert!(
            w.probes() * 4 < e.probes(),
            "windowed {} not well under exact {}",
            w.probes(),
            e.probes()
        );
    }

    #[test]
    fn single_actor_is_trivial() {
        let mut g = SdfGraph::new("one");
        let a = g.add_actor("A");
        let q = RepetitionsVector::compute(&g).unwrap();
        let ct = ChainTables::build(&g, &q, &[a]).unwrap();
        let mut s = Solver::new(&ct, DpMode::Windowed, Combine::Sum, |_, _, _| 0);
        assert_eq!(s.value(0, 0), 0);
        assert_eq!(s.probes(), 0);
    }

    #[test]
    #[ignore = "probe-scaling measurement harness, run with --ignored"]
    fn measure_probe_scaling() {
        for n_edges in [127usize, 255, 511] {
            let edges: Vec<_> = (0..n_edges)
                .map(|i| {
                    if i % 16 == 8 {
                        if (i / 16) % 2 == 0 {
                            (2, 3, 0)
                        } else {
                            (3, 2, 0)
                        }
                    } else {
                        (1, 1, 0)
                    }
                })
                .collect();
            let (_, _, ct) = chain_tables(&edges);
            let n = ct.len();
            let t0 = std::time::Instant::now();
            let mut e = Solver::new(&ct, DpMode::Exact, Combine::Sum, |i, k, j| {
                ct.split_cost(i, k, j)
            });
            let ev = e.value(0, n - 1);
            let te = t0.elapsed();
            let t1 = std::time::Instant::now();
            let mut w = Solver::new(&ct, DpMode::Windowed, Combine::Sum, |i, k, j| {
                ct.split_cost(i, k, j)
            });
            let wv = w.value(0, n - 1);
            let tw = t1.elapsed();
            assert_eq!(ev, wv);
            eprintln!(
                "n={n}: exact {} probes in {te:?}, windowed {} probes in {tw:?}, ratio {:.1}",
                e.probes(),
                w.probes(),
                e.probes() as f64 / w.probes() as f64
            );
        }
    }

    #[test]
    fn names_round_trip() {
        for m in DpMode::ALL {
            assert_eq!(m.as_str().parse::<DpMode>().unwrap(), m);
            assert_eq!(m.to_string(), m.as_str());
        }
        assert!("bogus".parse::<DpMode>().is_err());
        assert_eq!(DpMode::default(), DpMode::Windowed);
    }
}
