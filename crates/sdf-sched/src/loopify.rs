//! Optimal loop compression of firing sequences (§12's regularity
//! discussion; the dynamic programming algorithm of the paper's
//! reference \[2\], CDPPO-style).
//!
//! Given an arbitrary firing sequence — e.g. one produced by the
//! demand-driven scheduler, or the fine-grained FIR expansion of §12 —
//! find the looped schedule with the **fewest actor appearances** that
//! generates exactly that sequence.  The recurrence over subsequences
//! `s[i..=j]`:
//!
//! ```text
//! cost[i][j] = min( min_k cost[i][k] + cost[k+1][j],          // split
//!                   cost[i][i+p−1] + loop_cost                // loop:
//!                       if s[i..=j] is len/p ≥ 2 copies of s[i..=i+p−1] )
//! ```
//!
//! With `loop_cost = 0` this matches the paper's convention of neglecting
//! loop-control overhead (§3).  The schedule `G A G A G A` compresses to
//! `(3 G A)` — the §12 FIR example.

use sdf_core::graph::ActorId;
use sdf_core::schedule::{LoopedSchedule, ScheduleNode};

/// The result of loop compression.
#[derive(Clone, Debug)]
pub struct LoopifyResult {
    /// The minimal-appearance looped schedule.
    pub schedule: LoopedSchedule,
    /// Its code size: number of actor appearances plus `loop_cost` per
    /// loop.
    pub code_size: u64,
}

#[derive(Clone, Copy, Debug)]
enum Choice {
    Leaf,
    Split(usize),
    Loop { period: usize },
}

/// Compresses `sequence` into the looped schedule with minimal code size.
///
/// `loop_cost` is the code-size charge per schedule loop (0 reproduces
/// the paper's cost model).  Runs in O(n³) time and O(n²) space; intended
/// for sequences up to a few thousand firings.
///
/// # Examples
///
/// ```
/// use sdf_core::{SdfGraph, LoopedSchedule};
/// use sdf_sched::loopify::compress;
///
/// # fn main() -> Result<(), sdf_core::SdfError> {
/// let mut g = SdfGraph::new("fir");
/// let gain = g.add_actor("G");
/// let add = g.add_actor("A");
/// let seq = vec![gain, add, gain, add, gain, add];
/// let r = compress(&seq, 0);
/// assert_eq!(r.code_size, 2);
/// assert_eq!(r.schedule.display(&g).to_string(), "(3G A)");
/// # Ok(())
/// # }
/// ```
pub fn compress(sequence: &[ActorId], loop_cost: u64) -> LoopifyResult {
    let n = sequence.len();
    if n == 0 {
        return LoopifyResult {
            schedule: LoopedSchedule::default(),
            code_size: 0,
        };
    }
    // cost and choice tables, row-major upper triangle.
    let mut cost = vec![0u64; n * n];
    let mut choice = vec![Choice::Leaf; n * n];
    for i in 0..n {
        cost[i * n + i] = 1;
    }
    for span in 1..n {
        for i in 0..(n - span) {
            let j = i + span;
            let len = span + 1;
            let mut best = u64::MAX;
            let mut best_choice = Choice::Leaf;
            for k in i..j {
                let c = cost[i * n + k] + cost[(k + 1) * n + j];
                if c < best {
                    best = c;
                    best_choice = Choice::Split(k);
                }
            }
            // Loop candidates: every proper divisor period of len.
            for period in 1..=(len / 2) {
                if !len.is_multiple_of(period) {
                    continue;
                }
                if (i..=(j - period)).all(|x| sequence[x] == sequence[x + period]) {
                    let c = cost[i * n + (i + period - 1)] + loop_cost;
                    if c < best {
                        best = c;
                        best_choice = Choice::Loop { period };
                    }
                }
            }
            cost[i * n + j] = best;
            choice[i * n + j] = best_choice;
        }
    }

    let body = build(sequence, &choice, n, 0, n - 1);
    LoopifyResult {
        schedule: LoopedSchedule::new(body),
        code_size: cost[n - 1], // row 0, column n-1
    }
}

fn build(
    sequence: &[ActorId],
    choice: &[Choice],
    n: usize,
    i: usize,
    j: usize,
) -> Vec<ScheduleNode> {
    match choice[i * n + j] {
        Choice::Leaf => vec![ScheduleNode::fire_n(sequence[i], (j - i + 1) as u64)],
        Choice::Split(k) => {
            let mut body = build(sequence, choice, n, i, k);
            let tail = build(sequence, choice, n, k + 1, j);
            // Coalesce adjacent firings of the same actor across the split.
            for node in tail {
                match (body.last_mut(), &node) {
                    (
                        Some(ScheduleNode::Fire { actor: a, count: c }),
                        ScheduleNode::Fire { actor: b, count: d },
                    ) if a == b => *c += d,
                    _ => body.push(node),
                }
            }
            body
        }
        Choice::Loop { period } => {
            let count = ((j - i + 1) / period) as u64;
            let inner = build(sequence, choice, n, i, i + period - 1);
            if inner.len() == 1 {
                if let ScheduleNode::Fire { actor, count: c } = inner[0] {
                    return vec![ScheduleNode::fire_n(actor, c * count)];
                }
            }
            vec![ScheduleNode::loop_of(count, inner)]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdf_core::graph::SdfGraph;

    fn ids(n: usize) -> (SdfGraph, Vec<ActorId>) {
        let mut g = SdfGraph::new("t");
        let ids = (0..n)
            .map(|i| g.add_actor(format!("{}", (b'A' + i as u8) as char)))
            .collect();
        (g, ids)
    }

    fn roundtrip(seq: &[ActorId], r: &LoopifyResult) {
        let expanded: Vec<ActorId> = r.schedule.firings().collect();
        assert_eq!(expanded, seq, "compression must preserve the sequence");
    }

    #[test]
    fn fir_pattern_from_section_12() {
        // G0 G1 A0 G2 A1 ... Gn An-1 compresses to G (n(G A)).
        let (g, a) = ids(2);
        let (gain, add) = (a[0], a[1]);
        let mut seq = vec![gain];
        for _ in 0..5 {
            seq.push(gain);
            seq.push(add);
        }
        let r = compress(&seq, 0);
        roundtrip(&seq, &r);
        assert_eq!(r.code_size, 3); // G (5(G A))
        assert_eq!(r.schedule.display(&g).to_string(), "A(5A B)");
    }

    #[test]
    fn runs_collapse_to_counted_firings() {
        let (g, a) = ids(1);
        let seq = vec![a[0]; 17];
        let r = compress(&seq, 0);
        roundtrip(&seq, &r);
        assert_eq!(r.code_size, 1);
        assert_eq!(r.schedule.display(&g).to_string(), "(17A)");
    }

    #[test]
    fn paper_fig2_sequence() {
        // A BCC BCC compresses to A (2 B (2C)) with 3 appearances.
        let (g, a) = ids(3);
        let (x, b, c) = (a[0], a[1], a[2]);
        let seq = vec![x, b, c, c, b, c, c];
        let r = compress(&seq, 0);
        roundtrip(&seq, &r);
        assert_eq!(r.code_size, 3);
        assert_eq!(r.schedule.display(&g).to_string(), "A(2B(2C))");
    }

    #[test]
    fn nested_periods_found() {
        // ((AB)(AB)C) twice: ABABC ABABC -> (2(2AB)C), 2 appearances...
        let (g, a) = ids(3);
        let (x, y, z) = (a[0], a[1], a[2]);
        let seq = vec![x, y, x, y, z, x, y, x, y, z];
        let r = compress(&seq, 0);
        roundtrip(&seq, &r);
        assert_eq!(r.code_size, 3);
        assert_eq!(r.schedule.display(&g).to_string(), "(2(2A B)C)");
    }

    #[test]
    fn loop_cost_discourages_small_loops() {
        // With loop_cost 2, looping "ABAB" (saves 2 appearances) is a
        // wash; the tie goes to the split-free encoding.
        let (_, a) = ids(2);
        let seq = vec![a[0], a[1], a[0], a[1]];
        let free = compress(&seq, 0);
        assert_eq!(free.code_size, 2);
        let costly = compress(&seq, 3);
        roundtrip(&seq, &costly);
        assert_eq!(costly.code_size, 4); // plain A B A B
    }

    #[test]
    fn empty_and_single() {
        let (_, a) = ids(1);
        let r0 = compress(&[], 0);
        assert_eq!(r0.code_size, 0);
        let r1 = compress(&[a[0]], 0);
        assert_eq!(r1.code_size, 1);
        roundtrip(&[a[0]], &r1);
    }

    #[test]
    fn irregular_sequence_stays_flat() {
        let (_, a) = ids(4);
        let seq = vec![a[0], a[1], a[2], a[3]];
        let r = compress(&seq, 0);
        roundtrip(&seq, &r);
        assert_eq!(r.code_size, 4);
    }

    #[test]
    fn compresses_demand_driven_schedule() {
        // The greedy CD-DAT-style schedule of a two-stage chain has a
        // regular interleave the compressor should find.
        use crate::demand::demand_driven_schedule;
        use sdf_core::repetitions::RepetitionsVector;
        let mut g = SdfGraph::new("chain");
        let s = g.add_actor("S");
        let t = g.add_actor("T");
        g.add_edge(s, t, 2, 3).unwrap(); // q = (3, 2)
        let q = RepetitionsVector::compute(&g).unwrap();
        let sched = demand_driven_schedule(&g, &q).unwrap();
        let seq: Vec<ActorId> = sched.firings().collect();
        let r = compress(&seq, 0);
        roundtrip(&seq, &r);
        assert!(r.code_size <= seq.len() as u64);
    }
}
