//! Cross-run memoization of windowed chain-DP subproblems.
//!
//! The windowed DPPO/SDPPO solver resolves one triangular cell at a time;
//! each cell's value and argmin split are pure functions of the *content*
//! of its subchain — the repetition counts at each position plus the
//! aggregated (TNSE, delay, edge-count) of every position pair the DP's
//! rectangle queries can see.  [`MemoStore`] keys cells by a
//! translation-invariant content hash of exactly that input (built by
//! `ChainHasher` alongside the [`crate::chain::ChainTables`] prefix
//! sums), so the same subchain reached through a *different* graph, a
//! different lexical position, or a different request hits the same
//! entry.
//!
//! This is what makes edit-heavy traffic cheap: a one-edge edit shifts or
//! perturbs a handful of subchains, and every untouched subproblem —
//! usually all but O(n) of them — is answered from the store instead of
//! being re-solved.  Correctness does not depend on the store at all: a
//! hit merely replays a value the exact recurrence would recompute, and
//! the smallest-argmin split tie-break is part of the memoized answer, so
//! memo-assisted runs are bit-identical to cold runs (asserted by tests,
//! the edit proptests and the CI smoke job).
//!
//! The store is bounded (FIFO eviction) and thread-safe; the engine holds
//! it in an `Arc` that survives across `AnalysisBuilder` runs and daemon
//! requests.  Occupancy and hit/miss/insert/evict totals are kept in
//! store-local atomics (the daemon serves them even though its workers
//! install no recorder) and mirrored onto the active trace recorder as
//! `engine.incremental.memo.*` counters when one is installed.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Domain tag: DPPO (Sum-combine, always-factored crossing cost).
pub const DOMAIN_DPPO: u8 = 1;
/// Domain tag: SDPPO under [`crate::FactoringPolicy::Heuristic`].
pub const DOMAIN_SDPPO_HEURISTIC: u8 = 2;
/// Domain tag: SDPPO under [`crate::FactoringPolicy::Always`].
pub const DOMAIN_SDPPO_ALWAYS: u8 = 3;
/// Domain tag: SDPPO under [`crate::FactoringPolicy::Never`].
pub const DOMAIN_SDPPO_NEVER: u8 = 4;

/// Content-addressed identity of one windowed-DP subproblem.
///
/// `h1`/`h2` are two independent 128-bit translation-invariant digests of
/// the subchain content (repetition counts and pairwise edge aggregates);
/// `len` pins the subchain length and `tag` the DP domain, so DPPO and
/// the three SDPPO factoring policies never share entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MemoKey {
    /// First digest family (position hash ∥ pair hash).
    pub h1: u128,
    /// Second, independently seeded digest family.
    pub h2: u128,
    /// Number of actors in the subchain.
    pub len: u32,
    /// DP domain (`DOMAIN_*`).
    pub tag: u8,
}

/// The memoized answer of one DP cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoEntry {
    /// The exact DP value of the subchain.
    pub value: u64,
    /// The smallest-argmin split, relative to the subchain start
    /// (`k - i`), so the entry is position-independent like its key.
    pub split_rel: u32,
}

/// A point-in-time summary of the store, for `stats`/`metrics`/`top`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Entries currently held.
    pub occupancy: u64,
    /// Configured capacity (entries).
    pub capacity: u64,
    /// Lookup hits since construction.
    pub hits: u64,
    /// Lookup misses since construction.
    pub misses: u64,
    /// Entries inserted since construction.
    pub inserts: u64,
    /// Entries evicted (FIFO) since construction.
    pub evictions: u64,
}

struct MemoInner {
    map: HashMap<MemoKey, MemoEntry>,
    /// Insertion order, for FIFO eviction.
    fifo: VecDeque<MemoKey>,
}

/// A bounded, thread-safe, content-addressed store of chain-DP cells that
/// persists across engine runs and daemon requests.
pub struct MemoStore {
    inner: Mutex<MemoInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

impl MemoStore {
    /// Default capacity: 4M entries (a few hundred MB fully occupied) —
    /// comfortably the full working set of the n=2048 scale corpus.
    pub const DEFAULT_CAPACITY: usize = 1 << 22;

    /// Creates a store bounded to `capacity` entries (minimum 1).
    pub fn with_capacity(capacity: usize) -> MemoStore {
        MemoStore {
            inner: Mutex::new(MemoInner {
                map: HashMap::new(),
                fifo: VecDeque::new(),
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Creates a store with [`MemoStore::DEFAULT_CAPACITY`].
    pub fn new() -> MemoStore {
        MemoStore::with_capacity(MemoStore::DEFAULT_CAPACITY)
    }

    /// Looks `key` up, recording a hit or miss.
    pub fn lookup(&self, key: &MemoKey) -> Option<MemoEntry> {
        let entry = self
            .inner
            .lock()
            .expect("memo store poisoned")
            .map
            .get(key)
            .copied();
        match entry {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                sdf_trace::counter_inc("engine.incremental.memo.hits");
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                sdf_trace::counter_inc("engine.incremental.memo.misses");
            }
        }
        entry
    }

    /// Inserts `key → entry`, evicting the oldest entry when full.
    /// Re-inserting an existing key is a no-op (the value is a pure
    /// function of the key, so it cannot differ).
    pub fn insert(&self, key: MemoKey, entry: MemoEntry) {
        let mut inner = self.inner.lock().expect("memo store poisoned");
        if inner.map.contains_key(&key) {
            return;
        }
        if inner.map.len() >= self.capacity {
            if let Some(oldest) = inner.fifo.pop_front() {
                inner.map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                sdf_trace::counter_inc("engine.incremental.memo.evictions");
            }
        }
        inner.map.insert(key, entry);
        inner.fifo.push_back(key);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        sdf_trace::counter_inc("engine.incremental.memo.inserts");
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("memo store poisoned").map.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops every entry (totals are preserved).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("memo store poisoned");
        inner.map.clear();
        inner.fifo.clear();
    }

    /// A point-in-time summary of occupancy and lifetime totals.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            occupancy: self.len() as u64,
            capacity: self.capacity as u64,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

impl Default for MemoStore {
    fn default() -> MemoStore {
        MemoStore::new()
    }
}

impl std::fmt::Debug for MemoStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("MemoStore")
            .field("occupancy", &stats.occupancy)
            .field("capacity", &stats.capacity)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u128) -> MemoKey {
        MemoKey {
            h1: n,
            h2: n.wrapping_mul(0x9E3779B97F4A7C15),
            len: 3,
            tag: DOMAIN_DPPO,
        }
    }

    #[test]
    fn lookup_insert_round_trip() {
        let store = MemoStore::with_capacity(8);
        assert_eq!(store.lookup(&key(1)), None);
        store.insert(
            key(1),
            MemoEntry {
                value: 42,
                split_rel: 1,
            },
        );
        assert_eq!(
            store.lookup(&key(1)),
            Some(MemoEntry {
                value: 42,
                split_rel: 1
            })
        );
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 1, 1));
        assert_eq!(stats.occupancy, 1);
        assert_eq!(stats.capacity, 8);
    }

    #[test]
    fn fifo_eviction_bounds_occupancy() {
        let store = MemoStore::with_capacity(4);
        for i in 0..10u128 {
            store.insert(
                key(i),
                MemoEntry {
                    value: i as u64,
                    split_rel: 0,
                },
            );
        }
        assert_eq!(store.len(), 4);
        assert_eq!(store.stats().evictions, 6);
        // The oldest keys are gone, the newest survive.
        assert_eq!(store.lookup(&key(0)), None);
        assert!(store.lookup(&key(9)).is_some());
    }

    #[test]
    fn reinsert_is_a_no_op() {
        let store = MemoStore::with_capacity(4);
        let e = MemoEntry {
            value: 7,
            split_rel: 2,
        };
        store.insert(key(5), e);
        store.insert(key(5), e);
        assert_eq!(store.stats().inserts, 1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn tags_and_length_separate_domains() {
        let a = MemoKey {
            h1: 1,
            h2: 2,
            len: 3,
            tag: DOMAIN_DPPO,
        };
        let b = MemoKey {
            tag: DOMAIN_SDPPO_HEURISTIC,
            ..a
        };
        let c = MemoKey { len: 4, ..a };
        let store = MemoStore::new();
        store.insert(
            a,
            MemoEntry {
                value: 1,
                split_rel: 0,
            },
        );
        assert!(store.lookup(&b).is_none());
        assert!(store.lookup(&c).is_none());
    }

    #[test]
    fn clear_preserves_totals() {
        let store = MemoStore::with_capacity(4);
        store.insert(
            key(1),
            MemoEntry {
                value: 1,
                split_rel: 0,
            },
        );
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.stats().inserts, 1);
        assert_eq!(store.lookup(&key(1)), None);
    }
}
