//! The **fine-grained** buffer lifetime model (the left side of the
//! paper's Fig. 3).
//!
//! The paper adopts the *coarse* model — a buffer of `TNSE(e)`-per-
//! occurrence words is live from the producer's first write until the
//! token count returns to zero — because it keeps pointer management
//! trivial.  The fine-grained alternative tracks the token count step by
//! step: the buffer is live exactly while tokens are queued, which yields
//! shorter, possibly fragmented lifetimes and therefore more sharing.
//!
//! This module implements that model by direct simulation on the schedule
//! tree's abstract clock (one leaf invocation = one step), so the two
//! models can be compared on equal footing (`fig3_models` experiment).

use sdf_core::graph::{EdgeId, SdfGraph};
use sdf_core::repetitions::RepetitionsVector;
use sdf_core::schedule::{SasNode, SasTree};

use crate::wig::ConflictGraph;

/// A fine-grained lifetime: an explicit, sorted, disjoint set of half-open
/// live intervals on the schedule clock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FineLifetime {
    intervals: Vec<(u64, u64)>,
    size: u64,
}

impl FineLifetime {
    /// Creates a lifetime from raw intervals (merged and sorted here).
    ///
    /// Empty or reversed intervals are dropped.
    pub fn new(mut intervals: Vec<(u64, u64)>, size: u64) -> Self {
        intervals.retain(|&(s, e)| s < e);
        intervals.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(intervals.len());
        for (s, e) in intervals {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        FineLifetime {
            intervals: merged,
            size,
        }
    }

    /// The live intervals, sorted and disjoint.
    pub fn intervals(&self) -> &[(u64, u64)] {
        &self.intervals
    }

    /// Memory words needed while live (the peak token count).
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Earliest live time (0 for a never-live buffer).
    pub fn start(&self) -> u64 {
        self.intervals.first().map_or(0, |&(s, _)| s)
    }

    /// End of the last live interval.
    pub fn end(&self) -> u64 {
        self.intervals.last().map_or(0, |&(_, e)| e)
    }

    /// True if the buffer is live at step `t`.
    pub fn live_at(&self, t: u64) -> bool {
        self.intervals
            .binary_search_by(|&(s, e)| {
                if t < s {
                    std::cmp::Ordering::Greater
                } else if t >= e {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// True if any live intervals of the two lifetimes overlap.
    pub fn intersects(&self, other: &FineLifetime) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.intervals.len() && j < other.intervals.len() {
            let (s1, e1) = self.intervals[i];
            let (s2, e2) = other.intervals[j];
            if s1 < e2 && s2 < e1 {
                return true;
            }
            if e1 <= e2 {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }
}

/// One fine-model buffer.
#[derive(Clone, Debug)]
pub struct FineBuffer {
    /// The SDF edge this buffer implements.
    pub edge: EdgeId,
    /// Its fine-grained lifetime.
    pub lifetime: FineLifetime,
}

/// The intersection graph of fine-grained lifetimes; usable with the same
/// allocator as the coarse WIG via [`ConflictGraph`].
#[derive(Clone, Debug)]
pub struct FineIntersectionGraph {
    buffers: Vec<FineBuffer>,
    adjacency: Vec<Vec<usize>>,
}

impl FineIntersectionGraph {
    /// Builds the fine-grained graph for an **arbitrary** firing
    /// sequence (each firing is one step).  Used for non-SAS schedules,
    /// e.g. the demand-driven scheduler's output when reproducing the
    /// §11.1.3 dynamic-scheduling comparison.
    ///
    /// # Panics
    ///
    /// Panics if the sequence deadlocks (fires an actor without enough
    /// input tokens).
    pub fn from_firings<I: IntoIterator<Item = sdf_core::ActorId>>(
        graph: &SdfGraph,
        firings: I,
    ) -> Self {
        let m = graph.edge_count();
        let mut tokens: Vec<u64> = graph.edges().map(|(_, e)| e.delay).collect();
        let mut peak = tokens.clone();
        let mut open: Vec<Option<u64>> = tokens
            .iter()
            .map(|&t| if t > 0 { Some(0) } else { None })
            .collect();
        let mut done: Vec<Vec<(u64, u64)>> = vec![Vec::new(); m];
        let mut step = 0u64;
        for actor in firings {
            let t = step;
            for &e in graph.in_edges(actor) {
                let idx = e.index();
                assert!(tokens[idx] >= graph.edge(e).cons, "sequence deadlocks");
                tokens[idx] -= graph.edge(e).cons;
                if tokens[idx] == 0 {
                    if let Some(s) = open[idx].take() {
                        done[idx].push((s, t + 1));
                    }
                }
            }
            for &e in graph.out_edges(actor) {
                let idx = e.index();
                tokens[idx] += graph.edge(e).prod;
                peak[idx] = peak[idx].max(tokens[idx]);
                if open[idx].is_none() {
                    open[idx] = Some(t);
                }
            }
            step += 1;
        }
        for (idx, o) in open.iter_mut().enumerate() {
            if let Some(s) = o.take() {
                done[idx].push((s, step));
            }
        }
        let buffers: Vec<FineBuffer> = graph
            .edges()
            .map(|(id, _)| FineBuffer {
                edge: id,
                lifetime: FineLifetime::new(
                    std::mem::take(&mut done[id.index()]),
                    peak[id.index()].max(1),
                ),
            })
            .collect();
        Self::from_fine_buffers(buffers)
    }

    /// Builds the conflict structure from already-extracted buffers,
    /// using the same start-sorted active-set sweep as the coarse WIG
    /// (a fine lifetime's envelope is `[start(), end())`).
    pub fn from_fine_buffers(buffers: Vec<FineBuffer>) -> Self {
        let _span = sdf_trace::span!("lifetime.fine_wig", buffers = buffers.len());
        let traced = sdf_trace::enabled();
        let mut edge_tests = 0u64;
        let n = buffers.len();
        let adjacency = crate::wig::sweep_adjacency(
            n,
            |i| buffers[i].lifetime.start(),
            |i| buffers[i].lifetime.end(),
            |i, j| {
                if traced {
                    edge_tests += 1;
                }
                buffers[i].lifetime.intersects(&buffers[j].lifetime)
            },
        );
        if traced {
            sdf_trace::counter_add("lifetime.fine.edge_tests", edge_tests);
            let conflicts = adjacency.iter().map(Vec::len).sum::<usize>() as u64 / 2;
            sdf_trace::counter_add("lifetime.fine.conflicts", conflicts);
        }
        FineIntersectionGraph { buffers, adjacency }
    }

    /// Brute-force all-pairs twin of
    /// [`FineIntersectionGraph::from_fine_buffers`], kept public as the
    /// sweep's executable specification for equivalence tests.
    pub fn from_fine_buffers_all_pairs(buffers: Vec<FineBuffer>) -> Self {
        let n = buffers.len();
        let mut adjacency = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if buffers[i].lifetime.intersects(&buffers[j].lifetime) {
                    adjacency[i].push(j);
                    adjacency[j].push(i);
                }
            }
        }
        FineIntersectionGraph { buffers, adjacency }
    }

    /// Simulates `sas` step by step and builds the fine-grained graph.
    ///
    /// A buffer is live at a step if tokens are queued on its edge at any
    /// point during that step (before, during or after the step's
    /// firings); its size is the peak token count.
    ///
    /// # Panics
    ///
    /// Panics if the SAS does not validate against `graph`/`q` or the
    /// schedule deadlocks (both impossible for SASs produced by the
    /// scheduling crate on consistent graphs).
    pub fn build(graph: &SdfGraph, q: &RepetitionsVector, sas: &SasTree) -> Self {
        sas.validate(graph, q).expect("valid SAS");
        let m = graph.edge_count();
        let mut tokens: Vec<u64> = graph.edges().map(|(_, e)| e.delay).collect();
        let mut peak = tokens.clone();
        // Per edge: currently-open live interval start, and finished ones.
        let mut open: Vec<Option<u64>> = tokens
            .iter()
            .map(|&t| if t > 0 { Some(0) } else { None })
            .collect();
        let mut done: Vec<Vec<(u64, u64)>> = vec![Vec::new(); m];
        let mut step = 0u64;

        // Walk the leaf-invocation sequence of the SAS.
        fn walk(
            node: &SasNode,
            graph: &SdfGraph,
            step: &mut u64,
            tokens: &mut [u64],
            peak: &mut [u64],
            open: &mut [Option<u64>],
            done: &mut [Vec<(u64, u64)>],
        ) {
            match node {
                SasNode::Leaf { actor, reps } => {
                    let t = *step;
                    // `reps` firings happen within this single step.
                    for _ in 0..*reps {
                        for &e in graph.in_edges(*actor) {
                            let idx = e.index();
                            debug_assert!(tokens[idx] >= graph.edge(e).cons, "deadlock");
                            tokens[idx] -= graph.edge(e).cons;
                            // Consuming keeps the buffer live through this
                            // step even if it empties.
                            if tokens[idx] == 0 {
                                if let Some(s) = open[idx].take() {
                                    done[idx].push((s, t + 1));
                                }
                            }
                        }
                        for &e in graph.out_edges(*actor) {
                            let idx = e.index();
                            tokens[idx] += graph.edge(e).prod;
                            peak[idx] = peak[idx].max(tokens[idx]);
                            if open[idx].is_none() {
                                open[idx] = Some(t);
                            }
                        }
                    }
                    *step += 1;
                }
                SasNode::Branch { count, left, right } => {
                    for _ in 0..*count {
                        walk(left, graph, step, tokens, peak, open, done);
                        walk(right, graph, step, tokens, peak, open, done);
                    }
                }
            }
        }
        walk(
            sas.root(),
            graph,
            &mut step,
            &mut tokens,
            &mut peak,
            &mut open,
            &mut done,
        );

        // Close intervals still open at the period boundary (delay edges).
        for (idx, o) in open.iter_mut().enumerate() {
            if let Some(s) = o.take() {
                done[idx].push((s, step));
            }
        }

        let buffers: Vec<FineBuffer> = graph
            .edges()
            .map(|(id, _)| FineBuffer {
                edge: id,
                lifetime: FineLifetime::new(
                    std::mem::take(&mut done[id.index()]),
                    peak[id.index()].max(1),
                ),
            })
            .collect();
        Self::from_fine_buffers(buffers)
    }

    /// The buffers in SDF edge order.
    pub fn buffers(&self) -> &[FineBuffer] {
        &self.buffers
    }

    /// Total size of all buffers (non-shared requirement).
    pub fn total_size(&self) -> u64 {
        self.buffers.iter().map(|b| b.lifetime.size()).sum()
    }
}

impl ConflictGraph for FineIntersectionGraph {
    fn len(&self) -> usize {
        self.buffers.len()
    }

    fn size(&self, index: usize) -> u64 {
        self.buffers[index].lifetime.size()
    }

    fn start(&self, index: usize) -> u64 {
        self.buffers[index].lifetime.start()
    }

    fn duration(&self, index: usize) -> u64 {
        let lt = &self.buffers[index].lifetime;
        lt.end() - lt.start()
    }

    fn conflicts(&self, index: usize) -> &[usize] {
        &self.adjacency[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::ScheduleTree;
    use crate::wig::IntersectionGraph;

    fn fig2() -> (SdfGraph, RepetitionsVector, SasTree) {
        let mut g = SdfGraph::new("fig2");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge(a, b, 20, 10).unwrap();
        g.add_edge(b, c, 20, 10).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let sas = SasTree::new(SasNode::branch(
            1,
            SasNode::leaf(a, 1),
            SasNode::branch(2, SasNode::leaf(b, 1), SasNode::leaf(c, 2)),
        ));
        (g, q, sas)
    }

    #[test]
    fn lifetime_merge_and_queries() {
        let lt = FineLifetime::new(vec![(5, 7), (0, 2), (2, 4), (9, 9)], 3);
        assert_eq!(lt.intervals(), &[(0, 4), (5, 7)]);
        assert!(lt.live_at(0));
        assert!(lt.live_at(3));
        assert!(!lt.live_at(4));
        assert!(lt.live_at(6));
        assert!(!lt.live_at(7));
        assert_eq!(lt.start(), 0);
        assert_eq!(lt.end(), 7);
    }

    #[test]
    fn interval_set_intersection() {
        let a = FineLifetime::new(vec![(0, 2), (6, 8)], 1);
        let b = FineLifetime::new(vec![(2, 6)], 1);
        let c = FineLifetime::new(vec![(1, 3)], 1);
        assert!(!a.intersects(&b));
        assert!(a.intersects(&c));
        assert!(b.intersects(&c));
        assert!(c.intersects(&a));
    }

    #[test]
    fn fig2_fine_lifetimes() {
        // Schedule A (2 B (2C)): steps A=0, B=1, C=2, B=3, C=4.
        let (g, q, sas) = fig2();
        let fine = FineIntersectionGraph::build(&g, &q, &sas);
        // Edge (A,B): filled at step 0, drained by B's second firing at
        // step 3 -> live [0, 4).
        assert_eq!(fine.buffers()[0].lifetime.intervals(), &[(0, 4)]);
        assert_eq!(fine.buffers()[0].lifetime.size(), 20);
        // Edge (B,C): B fills at 1, C drains within steps 2; refill at 3,
        // drained at 4: live [1,3) and [3,5) merged to [1,5).
        assert_eq!(fine.buffers()[1].lifetime.intervals(), &[(1, 5)]);
        assert_eq!(fine.buffers()[1].lifetime.size(), 20);
    }

    #[test]
    fn fine_conflicts_are_a_subset_of_coarse_conflicts() {
        // Fine lifetimes are subsets of the coarse ones, so every fine
        // conflict must also be a coarse conflict (allocation can then only
        // improve or tie — checked end-to-end in the workspace tests).
        let (g, q, sas) = fig2();
        let tree = ScheduleTree::build(&g, &q, &sas).unwrap();
        let coarse = IntersectionGraph::build(&g, &q, &tree);
        let fine = FineIntersectionGraph::build(&g, &q, &sas);
        for i in 0..fine.len() {
            for &j in fine.conflicts(i) {
                assert!(
                    coarse.overlaps(i, j),
                    "fine conflict ({i},{j}) missing from coarse model"
                );
            }
        }
        // Sizes agree between the models (both are the peak token count
        // for delayless forward edges).
        for (cb, fb) in coarse.buffers().iter().zip(fine.buffers()) {
            assert_eq!(cb.lifetime.size(), fb.lifetime.size());
        }
    }

    #[test]
    fn delay_edge_live_from_time_zero() {
        let mut g = SdfGraph::new("d");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge_with_delay(a, b, 1, 1, 2).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let sas = SasTree::new(SasNode::branch(1, SasNode::leaf(a, 1), SasNode::leaf(b, 1)));
        let fine = FineIntersectionGraph::build(&g, &q, &sas);
        let lt = &fine.buffers()[0].lifetime;
        assert_eq!(lt.start(), 0);
        // Tokens never drop to zero (delay 2, one produce/consume pair):
        // live through the whole 2-step period.
        assert_eq!(lt.intervals(), &[(0, 2)]);
        assert_eq!(lt.size(), 3); // 2 initial + 1 produced before consume? peak is 3 or 2
    }

    mod sweep_equivalence {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The shared active-set sweep must reproduce the brute-force
            /// all-pairs adjacency on arbitrary fragmented interval sets,
            /// including never-live (empty) buffers.
            #[test]
            fn sweep_matches_all_pairs(
                raw in prop::collection::vec(
                    prop::collection::vec((0u64..48, 0u64..6), 0..4),
                    0..24,
                )
            ) {
                let mk = |raw: &[Vec<(u64, u64)>]| -> Vec<FineBuffer> {
                    raw.iter()
                        .enumerate()
                        .map(|(i, spans)| FineBuffer {
                            edge: EdgeId::from_index(i),
                            lifetime: FineLifetime::new(
                                spans.iter().map(|&(s, len)| (s, s + len)).collect(),
                                1,
                            ),
                        })
                        .collect()
                };
                let sweep = FineIntersectionGraph::from_fine_buffers(mk(&raw));
                let brute = FineIntersectionGraph::from_fine_buffers_all_pairs(mk(&raw));
                prop_assert_eq!(sweep.len(), brute.len());
                for i in 0..sweep.len() {
                    prop_assert_eq!(sweep.conflicts(i), brute.conflicts(i));
                }
            }
        }
    }

    #[test]
    fn gap_appears_when_buffer_empties_between_uses() {
        // A fires twice with a consumer in between: X (A B A B)? Use
        // q = (2, 2) via rates 1:1 and schedule (2 A B).
        let mut g = SdfGraph::new("gap");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge(a, b, 1, 1).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let _ = q;
        // Minimal q = (1,1); schedule A B: single interval [0, 2).
        let sas = SasTree::new(SasNode::branch(1, SasNode::leaf(a, 1), SasNode::leaf(b, 1)));
        let fine = FineIntersectionGraph::build(&g, &q, &sas);
        assert_eq!(fine.buffers()[0].lifetime.intervals(), &[(0, 2)]);
    }
}
