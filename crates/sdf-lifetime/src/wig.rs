//! The weighted intersection graph (WIG) of buffer lifetimes (§9.1).
//!
//! Nodes are buffers (one per SDF edge) weighted by size; an edge joins two
//! buffers whose lifetimes overlap in time.  Built with the sweep of
//! Fig. 19: buffers sorted by earliest start, candidate pairs pruned by the
//! envelope `[start, envelope_end)`, then tested precisely with the
//! periodic intersection test.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sdf_core::error::SdfError;
use sdf_core::graph::{EdgeId, SdfGraph};
use sdf_core::repetitions::RepetitionsVector;

use crate::interval::{buffer_lifetime, PeriodicLifetime};
use crate::tree::ScheduleTree;

/// One event of the start-sorted envelope sweep.
pub(crate) enum SweepEvent<'a> {
    /// Buffer `index` enters at `time` (its earliest start); `active`
    /// holds the `(envelope_end, index)` pairs of every buffer whose
    /// envelope contains `time`, *excluding* the entering buffer.
    Enter {
        index: usize,
        time: u64,
        active: &'a BinaryHeap<Reverse<(u64, usize)>>,
    },
    /// Buffer `index` retires at `time` (its envelope end).
    Retire { index: usize, time: u64 },
}

/// Start-sorted active-set envelope sweep shared by the intersection
/// graphs and the pool occupancy timeline.
///
/// Buffers enter in ascending `start` order; a min-heap keyed on envelope
/// end retires a buffer as soon as the sweep point passes its end.  The
/// `visit` callback sees every enter and retire event in sweep order
/// (retirements with `end <= start` fire before the entering buffer, and
/// all remaining buffers are retired at the end), doing
/// `O(n log n + events)` work instead of `Θ(n²)`.
pub(crate) fn envelope_sweep(
    n: usize,
    start: impl Fn(usize) -> u64,
    end: impl Fn(usize) -> u64,
    mut visit: impl FnMut(SweepEvent),
) {
    let mut by_start: Vec<usize> = (0..n).collect();
    by_start.sort_by_key(|&i| start(i));
    // Buffers whose envelope end lies beyond the sweep point, cheapest
    // retirement first.
    let mut active: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    for &i in &by_start {
        let s = start(i);
        while let Some(&Reverse((e, j))) = active.peek() {
            if e > s {
                break;
            }
            active.pop();
            visit(SweepEvent::Retire { index: j, time: e });
        }
        visit(SweepEvent::Enter {
            index: i,
            time: s,
            active: &active,
        });
        active.push(Reverse((end(i), i)));
    }
    while let Some(Reverse((e, j))) = active.pop() {
        visit(SweepEvent::Retire { index: j, time: e });
    }
}

/// Adjacency construction on top of [`envelope_sweep`]: each entering
/// buffer runs the precise `test` against exactly the buffers whose
/// envelopes contain its start.  The candidate set is the set of
/// envelope-overlapping pairs, so the adjacency is identical to the
/// brute-force all-pairs construction.
pub(crate) fn sweep_adjacency(
    n: usize,
    start: impl Fn(usize) -> u64,
    end: impl Fn(usize) -> u64,
    mut test: impl FnMut(usize, usize) -> bool,
) -> Vec<Vec<usize>> {
    let mut adjacency = vec![Vec::new(); n];
    envelope_sweep(n, start, end, |event| {
        if let SweepEvent::Enter { index, active, .. } = event {
            for &Reverse((_, j)) in active.iter() {
                if test(j, index) {
                    adjacency[index].push(j);
                    adjacency[j].push(index);
                }
            }
        }
    });
    for adj in &mut adjacency {
        adj.sort_unstable();
    }
    adjacency
}

/// A buffer (WIG node): the SDF edge it implements, its lifetime and size.
#[derive(Clone, Debug)]
pub struct Buffer {
    /// The SDF edge this buffer implements.
    pub edge: EdgeId,
    /// Its lifetime under the analysed schedule.
    pub lifetime: PeriodicLifetime,
}

/// The interface dynamic storage allocation needs from any intersection
/// graph: per-node sizes, coarse timing (for enumeration orders) and
/// conflict adjacency.
///
/// Implemented by the coarse-model [`IntersectionGraph`] and by the
/// fine-grained [`crate::fine::FineIntersectionGraph`], so the allocator in
/// `sdf-alloc` works with either buffer model.
pub trait ConflictGraph {
    /// Number of buffers.
    fn len(&self) -> usize;

    /// True if there are no buffers.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Memory words buffer `index` needs whenever it is live.
    fn size(&self, index: usize) -> u64;

    /// Earliest time buffer `index` becomes live.
    fn start(&self, index: usize) -> u64;

    /// Envelope duration (first start to last end) of buffer `index`.
    fn duration(&self, index: usize) -> u64;

    /// Indices of buffers whose lifetimes overlap buffer `index`, sorted
    /// ascending.
    fn conflicts(&self, index: usize) -> &[usize];
}

impl ConflictGraph for IntersectionGraph {
    fn len(&self) -> usize {
        self.buffers.len()
    }

    fn size(&self, index: usize) -> u64 {
        self.buffers[index].lifetime.size()
    }

    fn start(&self, index: usize) -> u64 {
        self.buffers[index].lifetime.start()
    }

    fn duration(&self, index: usize) -> u64 {
        let lt = &self.buffers[index].lifetime;
        lt.envelope_end() - lt.start()
    }

    fn conflicts(&self, index: usize) -> &[usize] {
        &self.adjacency[index]
    }
}

/// Reuse accounting of one [`IntersectionGraph::build_spliced`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WigSpliceStats {
    /// Buffers cloned from the previous WIG (clean edges).
    pub reused_buffers: u64,
    /// Buffers whose lifetimes were re-derived (dirty edges).
    pub recomputed_buffers: u64,
    /// Clean adjacency pairs copied from the previous WIG.
    pub reused_pairs: u64,
    /// Pairs touching a dirty buffer that were precisely re-tested.
    pub retested_pairs: u64,
}

/// The weighted intersection graph of all buffers of a schedule.
///
/// # Examples
///
/// ```
/// use sdf_core::{SdfGraph, RepetitionsVector, SasNode, SasTree};
/// use sdf_lifetime::{tree::ScheduleTree, wig::IntersectionGraph};
///
/// # fn main() -> Result<(), sdf_core::SdfError> {
/// let mut g = SdfGraph::new("fig2");
/// let a = g.add_actor("A");
/// let b = g.add_actor("B");
/// let c = g.add_actor("C");
/// g.add_edge(a, b, 20, 10)?;
/// g.add_edge(b, c, 20, 10)?;
/// let q = RepetitionsVector::compute(&g)?;
/// let sas = SasTree::new(SasNode::branch(
///     1,
///     SasNode::leaf(a, 1),
///     SasNode::branch(2, SasNode::leaf(b, 1), SasNode::leaf(c, 2)),
/// ));
/// let tree = ScheduleTree::build(&g, &q, &sas)?;
/// let wig = IntersectionGraph::build(&g, &q, &tree);
/// assert_eq!(wig.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct IntersectionGraph {
    buffers: Vec<Buffer>,
    /// Adjacency lists over buffer indices.
    adjacency: Vec<Vec<usize>>,
}

impl IntersectionGraph {
    /// Extracts all buffer lifetimes from `tree` and builds the WIG.
    pub fn build(graph: &SdfGraph, q: &RepetitionsVector, tree: &ScheduleTree) -> Self {
        let buffers: Vec<Buffer> = graph
            .edges()
            .map(|(id, _)| Buffer {
                edge: id,
                lifetime: buffer_lifetime(graph, q, tree, id),
            })
            .collect();
        Self::from_buffers(buffers)
    }

    /// Builds the WIG from externally constructed buffers (used by tests
    /// and by non-schedule instances, e.g. the random instances of \[20\]).
    pub fn from_buffers(buffers: Vec<Buffer>) -> Self {
        let _span = sdf_trace::span!("lifetime.wig", buffers = buffers.len());
        let traced = sdf_trace::enabled();
        let mut edge_tests = 0u64;
        let n = buffers.len();
        // Sweep by earliest start (Fig. 19's buildIntersectionGraph), with
        // the active set retired by envelope end.
        let adjacency = sweep_adjacency(
            n,
            |i| buffers[i].lifetime.start(),
            |i| buffers[i].lifetime.envelope_end(),
            |i, j| {
                if traced {
                    edge_tests += 1;
                }
                buffers[i].lifetime.intersects(&buffers[j].lifetime)
            },
        );
        if traced {
            sdf_trace::counter_add("lifetime.buffers", n as u64);
            let triples: u64 = buffers
                .iter()
                .map(|b| 1 + b.lifetime.periods().len() as u64)
                .sum();
            sdf_trace::counter_add("lifetime.triples", triples);
            sdf_trace::counter_add("lifetime.wig.edge_tests", edge_tests);
            let conflicts = adjacency.iter().map(Vec::len).sum::<usize>() as u64 / 2;
            sdf_trace::counter_add("lifetime.wig.conflicts", conflicts);
        }
        IntersectionGraph { buffers, adjacency }
    }

    /// Delta-driven rebuild: clean edges reuse the previous WIG's buffer
    /// lifetimes and clean-pair adjacency verbatim; only lifetimes of
    /// dirty edges and pairs touching a dirty buffer are recomputed.
    ///
    /// The result is bit-identical to [`IntersectionGraph::build`] on the
    /// same `(graph, q, tree)` **provided** the caller's cleanliness
    /// contract holds: for every `i` with `dirty[i] == false`, edge `i`
    /// of `graph` has the same record (endpoints, rates, delay) as edge
    /// `i` of the graph `prev` was built from, and `prev` was built under
    /// the same repetitions vector and an equal schedule tree. Lifetimes
    /// are pure per-edge functions of exactly those inputs
    /// ([`buffer_lifetime`]), so clean reuse cannot diverge; the
    /// incremental pipeline still asserts equality end-to-end rather than
    /// assuming it.
    ///
    /// # Panics
    ///
    /// Panics if `dirty.len() != graph.edge_count()`, or if a clean index
    /// has no positionally matching buffer in `prev`.
    pub fn build_spliced(
        graph: &SdfGraph,
        q: &RepetitionsVector,
        tree: &ScheduleTree,
        prev: &IntersectionGraph,
        dirty: &[bool],
    ) -> (Self, WigSpliceStats) {
        let n = graph.edge_count();
        assert_eq!(dirty.len(), n, "one dirty flag per edge");
        let mut stats = WigSpliceStats::default();
        let buffers: Vec<Buffer> = (0..n)
            .map(|i| {
                let id = EdgeId::from_index(i);
                if !dirty[i] {
                    let b = &prev.buffers[i];
                    assert_eq!(b.edge, id, "clean buffer must match positionally");
                    stats.reused_buffers += 1;
                    b.clone()
                } else {
                    stats.recomputed_buffers += 1;
                    Buffer {
                        edge: id,
                        lifetime: buffer_lifetime(graph, q, tree, id),
                    }
                }
            })
            .collect();
        let mut adjacency = vec![Vec::new(); n];
        // Clean-clean pairs come straight from the previous adjacency
        // (dropping neighbours past the new edge count — those buffers no
        // longer exist); each such pair appears once with j > i.
        for i in 0..n {
            if dirty[i] {
                continue;
            }
            for &j in &prev.adjacency[i] {
                if j > i && j < n && !dirty[j] {
                    adjacency[i].push(j);
                    adjacency[j].push(i);
                    stats.reused_pairs += 1;
                }
            }
        }
        // Every pair with at least one dirty member is re-tested, with
        // the same envelope pruning the sweep applies.
        for i in 0..n {
            for j in 0..i {
                if !(dirty[i] || dirty[j]) {
                    continue;
                }
                let (a, b) = (&buffers[i].lifetime, &buffers[j].lifetime);
                if a.start() >= b.envelope_end() || b.start() >= a.envelope_end() {
                    continue;
                }
                stats.retested_pairs += 1;
                if a.intersects(b) {
                    adjacency[i].push(j);
                    adjacency[j].push(i);
                }
            }
        }
        for adj in &mut adjacency {
            adj.sort_unstable();
        }
        (IntersectionGraph { buffers, adjacency }, stats)
    }

    /// Brute-force all-pairs construction — the sweep's executable
    /// specification.  `Θ(n²)` precise tests with no envelope pruning;
    /// kept public so tests (and external instances) can cross-check
    /// [`IntersectionGraph::from_buffers`] against it.
    pub fn from_buffers_all_pairs(buffers: Vec<Buffer>) -> Self {
        let n = buffers.len();
        let mut adjacency = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if buffers[i].lifetime.intersects(&buffers[j].lifetime) {
                    adjacency[i].push(j);
                    adjacency[j].push(i);
                }
            }
        }
        IntersectionGraph { buffers, adjacency }
    }

    /// Number of buffers.
    pub fn len(&self) -> usize {
        self.buffers.len()
    }

    /// True if there are no buffers.
    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }

    /// The buffer at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn buffer(&self, index: usize) -> &Buffer {
        &self.buffers[index]
    }

    /// All buffers in construction order (SDF edge order).
    pub fn buffers(&self) -> &[Buffer] {
        &self.buffers
    }

    /// Indices of buffers whose lifetimes overlap buffer `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn neighbours(&self, index: usize) -> &[usize] {
        &self.adjacency[index]
    }

    /// True if buffers `i` and `j` overlap in time.
    pub fn overlaps(&self, i: usize, j: usize) -> bool {
        self.adjacency[i].binary_search(&j).is_ok()
    }

    /// Total size of all buffers — the non-shared memory requirement of
    /// the schedule the WIG was extracted from.
    pub fn total_size(&self) -> u64 {
        self.buffers.iter().map(|b| b.lifetime.size()).sum()
    }

    /// Number of overlapping buffer pairs (edges of the intersection
    /// graph) — a density measure of how constrained allocation is.
    pub fn conflict_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Finds the buffer implementing `edge`.
    ///
    /// # Errors
    ///
    /// Returns [`SdfError::UnknownEdge`] if no buffer implements `edge`.
    pub fn buffer_of_edge(&self, edge: EdgeId) -> Result<usize, SdfError> {
        self.buffers
            .iter()
            .position(|b| b.edge == edge)
            .ok_or(SdfError::UnknownEdge(edge))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::{Period, PeriodicLifetime};
    use sdf_core::schedule::{SasNode, SasTree};

    fn lt(start: u64, dur: u64, size: u64) -> PeriodicLifetime {
        PeriodicLifetime::solid(start, dur, size)
    }

    fn wig_of(lifetimes: Vec<PeriodicLifetime>) -> IntersectionGraph {
        IntersectionGraph::from_buffers(
            lifetimes
                .into_iter()
                .enumerate()
                .map(|(i, lifetime)| Buffer {
                    edge: EdgeId::from_index(i),
                    lifetime,
                })
                .collect(),
        )
    }

    #[test]
    fn solid_overlap_detection() {
        let w = wig_of(vec![lt(0, 5, 1), lt(3, 4, 2), lt(5, 2, 3)]);
        assert!(w.overlaps(0, 1));
        assert!(!w.overlaps(0, 2)); // [0,5) vs [5,7): half-open, disjoint
        assert!(w.overlaps(1, 2));
        assert_eq!(w.neighbours(1), &[0, 2]);
        assert_eq!(w.total_size(), 6);
    }

    #[test]
    fn periodic_gaps_respected() {
        // Interleaved periodic buffers (Fig. 17's AB vs CD).
        let ab = PeriodicLifetime::periodic(
            0,
            2,
            1,
            vec![
                Period {
                    stride: 4,
                    count: 2,
                },
                Period {
                    stride: 9,
                    count: 2,
                },
            ],
        );
        let cd = PeriodicLifetime::periodic(
            2,
            2,
            1,
            vec![
                Period {
                    stride: 4,
                    count: 2,
                },
                Period {
                    stride: 9,
                    count: 2,
                },
            ],
        );
        let w = wig_of(vec![ab, cd]);
        assert!(!w.overlaps(0, 1));
    }

    #[test]
    fn built_from_schedule_tree() {
        // A (2 B (2C)) on Fig. 2's graph: both buffers overlap.
        let mut g = SdfGraph::new("fig2");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge(a, b, 20, 10).unwrap();
        g.add_edge(b, c, 20, 10).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let sas = SasTree::new(SasNode::branch(
            1,
            SasNode::leaf(a, 1),
            SasNode::branch(2, SasNode::leaf(b, 1), SasNode::leaf(c, 2)),
        ));
        let tree = ScheduleTree::build(&g, &q, &sas).unwrap();
        let w = IntersectionGraph::build(&g, &q, &tree);
        assert_eq!(w.len(), 2);
        assert!(w.overlaps(0, 1));
        // Sizes: (A,B) holds 20 tokens, (B,C) holds 20 per outer iteration.
        assert_eq!(w.buffer(0).lifetime.size(), 20);
        assert_eq!(w.buffer(1).lifetime.size(), 20);
        assert_eq!(w.total_size(), 40);
    }

    #[test]
    fn buffer_of_edge_lookup() {
        let w = wig_of(vec![lt(0, 1, 1)]);
        assert_eq!(w.buffer_of_edge(EdgeId::from_index(0)).unwrap(), 0);
        assert!(w.buffer_of_edge(EdgeId::from_index(9)).is_err());
    }

    #[test]
    fn empty_graph() {
        let w = wig_of(vec![]);
        assert!(w.is_empty());
        assert_eq!(w.total_size(), 0);
    }

    mod splice {
        use super::*;

        /// A four-stage chain with an editable delay on the middle edge;
        /// rates are uniform so the repetitions vector (and thus any
        /// fixed schedule tree) is delay-independent.
        fn chain(delay: u64) -> SdfGraph {
            let mut g = SdfGraph::new("chain4");
            let a = g.add_actor("A");
            let b = g.add_actor("B");
            let c = g.add_actor("C");
            let d = g.add_actor("D");
            g.add_edge(a, b, 2, 1).unwrap();
            g.add_edge_with_delay(b, c, 1, 1, delay).unwrap();
            g.add_edge(c, d, 1, 2).unwrap();
            g
        }

        fn tree_for(g: &SdfGraph, q: &RepetitionsVector) -> ScheduleTree {
            use sdf_core::schedule::{SasNode, SasTree};
            let ids: Vec<_> = g.actors().collect();
            // A (2 BC) D — matches q = (1, 2, 2, 1).
            let sas = SasTree::new(SasNode::branch(
                1,
                SasNode::leaf(ids[0], 1),
                SasNode::branch(
                    1,
                    SasNode::branch(2, SasNode::leaf(ids[1], 1), SasNode::leaf(ids[2], 1)),
                    SasNode::leaf(ids[3], 1),
                ),
            ));
            ScheduleTree::build(g, q, &sas).unwrap()
        }

        #[test]
        fn spliced_build_matches_cold_build() {
            let base = chain(0);
            let q = RepetitionsVector::compute(&base).unwrap();
            let prev = IntersectionGraph::build(&base, &q, &tree_for(&base, &q));
            for delay in [1, 3, 7] {
                let edited = chain(delay);
                assert_eq!(RepetitionsVector::compute(&edited).unwrap(), q);
                let tree = tree_for(&edited, &q);
                let cold = IntersectionGraph::build(&edited, &q, &tree);
                let dirty = vec![false, true, false];
                let (warm, stats) =
                    IntersectionGraph::build_spliced(&edited, &q, &tree, &prev, &dirty);
                assert_eq!(warm.len(), cold.len());
                for i in 0..cold.len() {
                    assert_eq!(warm.buffer(i).edge, cold.buffer(i).edge, "delay {delay}");
                    assert_eq!(
                        warm.buffer(i).lifetime,
                        cold.buffer(i).lifetime,
                        "delay {delay} buffer {i}"
                    );
                    assert_eq!(warm.neighbours(i), cold.neighbours(i), "delay {delay}");
                }
                assert_eq!(stats.reused_buffers, 2);
                assert_eq!(stats.recomputed_buffers, 1);
            }
        }

        #[test]
        fn all_dirty_splice_matches_cold_build() {
            let g = chain(2);
            let q = RepetitionsVector::compute(&g).unwrap();
            let tree = tree_for(&g, &q);
            let cold = IntersectionGraph::build(&g, &q, &tree);
            // Splicing against an unrelated previous WIG with everything
            // dirty must ignore the previous state entirely.
            let other = chain(0);
            let prev = IntersectionGraph::build(&other, &q, &tree_for(&other, &q));
            let (warm, stats) =
                IntersectionGraph::build_spliced(&g, &q, &tree, &prev, &[true, true, true]);
            for i in 0..cold.len() {
                assert_eq!(warm.buffer(i).lifetime, cold.buffer(i).lifetime);
                assert_eq!(warm.neighbours(i), cold.neighbours(i));
            }
            assert_eq!(stats.reused_buffers, 0);
            assert_eq!(stats.reused_pairs, 0);
        }
    }

    mod sweep_equivalence {
        use super::*;
        use proptest::prelude::*;

        /// Structurally valid periodic lifetimes: nesting strides, with
        /// occasional zero-duration and solid degenerate cases.
        fn lifetime_strategy() -> impl Strategy<Value = PeriodicLifetime> {
            (
                0u64..40,                                        // start
                0u64..6,                                         // dur
                prop::collection::vec((2u64..5, 2u64..4), 0..3), // (gap factor, count)
                1u64..16,                                        // size
            )
                .prop_map(|(start, dur, levels, size)| {
                    let mut periods = Vec::new();
                    let mut stride = dur.max(1);
                    for (factor, count) in levels {
                        stride *= factor;
                        periods.push(Period { stride, count });
                        stride *= count;
                    }
                    PeriodicLifetime::periodic(start, dur, size, periods)
                })
        }

        proptest! {
            /// The active-set sweep must produce exactly the brute-force
            /// all-pairs adjacency on arbitrary (periodic, solid,
            /// zero-length) lifetime mixes.
            #[test]
            fn sweep_matches_all_pairs(
                lifetimes in prop::collection::vec(lifetime_strategy(), 0..24)
            ) {
                let mk = |lts: &[PeriodicLifetime]| -> Vec<Buffer> {
                    lts.iter()
                        .enumerate()
                        .map(|(i, lifetime)| Buffer {
                            edge: EdgeId::from_index(i),
                            lifetime: lifetime.clone(),
                        })
                        .collect()
                };
                let sweep = IntersectionGraph::from_buffers(mk(&lifetimes));
                let brute = IntersectionGraph::from_buffers_all_pairs(mk(&lifetimes));
                prop_assert_eq!(sweep.len(), brute.len());
                for i in 0..sweep.len() {
                    prop_assert_eq!(sweep.neighbours(i), brute.neighbours(i));
                }
            }
        }
    }
}
