//! ASCII Gantt rendering of buffer lifetimes — the textual equivalent of
//! the paper's Fig. 17 lifetime charts.
//!
//! Each buffer gets one row over the schedule clock; `#` marks steps where
//! the buffer is live.  Periodic gaps (the whole point of §8.4) are
//! immediately visible:
//!
//! ```text
//! (A,B)  w1 |##--##---##--##---|
//! (B,C)  w1 |-##--##---##--##--|
//! ```

use std::fmt::Write as _;

use sdf_core::graph::SdfGraph;

use crate::tree::ScheduleTree;
use crate::wig::IntersectionGraph;

/// Renders the lifetime chart of every buffer in `wig` over the schedule
/// period of `tree`.
///
/// `max_width` caps the number of time columns; longer periods are
/// down-sampled (a column is `#` if any of its steps is live), so charts
/// of big systems stay terminal-sized.
pub fn render_gantt(
    graph: &SdfGraph,
    tree: &ScheduleTree,
    wig: &IntersectionGraph,
    max_width: usize,
) -> String {
    let period = tree.total_duration().max(1);
    let width = (period as usize).min(max_width.max(1));
    // steps per column, rounded up.
    let stride = period.div_ceil(width as u64);
    let cols = period.div_ceil(stride) as usize;

    let label_width = wig
        .buffers()
        .iter()
        .map(|b| {
            let e = graph.edge(b.edge);
            graph.actor_name(e.src).len() + graph.actor_name(e.snk).len() + 3
        })
        .max()
        .unwrap_or(4);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:label_width$}  size  |{}| period {period} steps ({} steps/column)",
        "buffer",
        "-".repeat(cols),
        stride
    );
    for b in wig.buffers() {
        let e = graph.edge(b.edge);
        let label = format!("({},{})", graph.actor_name(e.src), graph.actor_name(e.snk));
        let _ = write!(out, "{label:label_width$}  {:>4}  |", b.lifetime.size());
        for col in 0..cols {
            let lo = col as u64 * stride;
            let hi = (lo + stride).min(period);
            let live = (lo..hi).any(|t| b.lifetime.live_at(t));
            out.push(if live { '#' } else { '-' });
        }
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdf_core::repetitions::RepetitionsVector;
    use sdf_core::schedule::{SasNode, SasTree};

    fn fig17() -> (SdfGraph, ScheduleTree, IntersectionGraph) {
        let mut g = SdfGraph::new("fig17");
        let s = g.add_actor("S");
        let ids: Vec<_> = ["A", "B", "C", "D", "E"]
            .iter()
            .map(|n| g.add_actor(*n))
            .collect();
        g.add_edge(s, ids[0], 4, 1).unwrap();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], 1, 1).unwrap();
        }
        let q = RepetitionsVector::compute(&g).unwrap();
        let sas = SasTree::new(SasNode::branch(
            1,
            SasNode::leaf(s, 1),
            SasNode::branch(
                2,
                SasNode::branch(
                    2,
                    SasNode::branch(1, SasNode::leaf(ids[0], 1), SasNode::leaf(ids[1], 1)),
                    SasNode::branch(1, SasNode::leaf(ids[2], 1), SasNode::leaf(ids[3], 1)),
                ),
                SasNode::leaf(ids[4], 2),
            ),
        ));
        let tree = ScheduleTree::build(&g, &q, &sas).unwrap();
        let wig = IntersectionGraph::build(&g, &q, &tree);
        (g, tree, wig)
    }

    #[test]
    fn full_resolution_shows_periodic_gaps() {
        let (g, tree, wig) = fig17();
        let chart = render_gantt(&g, &tree, &wig, 100);
        // Buffer (A,B) is live at steps 1,2 / 5,6 / 10,11 / 14,15 of 19.
        let ab_row = chart.lines().find(|l| l.starts_with("(A,B)")).unwrap();
        assert!(ab_row.contains("|-##--##---##--##---|"), "{chart}");
        // Every row has the same number of columns.
        let widths: std::collections::HashSet<usize> = chart
            .lines()
            .skip(1)
            .map(|l| l.chars().filter(|&c| c == '#' || c == '-').count())
            .collect();
        assert_eq!(widths.len(), 1, "{chart}");
    }

    #[test]
    fn downsampling_caps_width() {
        let (g, tree, wig) = fig17();
        let chart = render_gantt(&g, &tree, &wig, 5);
        let ab_row = chart.lines().find(|l| l.starts_with("(A,B)")).unwrap();
        let cols = ab_row.chars().filter(|&c| c == '#' || c == '-').count();
        assert!(cols <= 5, "{chart}");
        // Down-sampled rows must still show some live columns.
        assert!(ab_row.contains('#'), "{chart}");
    }
}
