//! Cross-mode merging of per-mode intersection graphs.
//!
//! Multi-mode synthesis schedules and analyses every mode independently
//! (each mode gets its own WIG over its own schedule), then merges the
//! per-mode WIGs into one [`ModeConflictGraph`] so the existing
//! first-fit allocator packs **one** shared pool for the whole scenario
//! set.  The merge rules:
//!
//! * a **persistent** buffer (one node per declared persistent edge, no
//!   matter how many modes it appears in) holds live tokens at every
//!   transition, so it conflicts with *everything*: every other
//!   persistent buffer and every mode-local buffer of every mode;
//! * **mode-local** buffers of the *same* mode conflict exactly when
//!   their per-mode WIG says their lifetimes overlap;
//! * mode-local buffers of *different* modes never conflict — only one
//!   mode executes at a time, and local buffers are dead across a
//!   switch.
//!
//! The merged graph implements [`ConflictGraph`], so
//! `sdf_alloc::allocate` works on it unchanged.  Node timing places
//! each mode in its own disjoint window of a virtual timeline (mode *m*
//! shifted by `m × stride`) and stretches persistent buffers over the
//! whole horizon, so duration-descending first-fit lays persistent
//! buffers first — giving every persistent buffer a single offset that
//! is, by construction, identical in every mode.

use crate::wig::{ConflictGraph, IntersectionGraph};

/// What a merged node stands for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModeBufferKind {
    /// Declared persistent edge `index` (declaration order).
    Persistent {
        /// Index into the persistent declarations.
        index: usize,
    },
    /// Buffer `buffer` of mode `mode`'s own intersection graph.
    Local {
        /// Mode index.
        mode: usize,
        /// Buffer index within that mode's WIG.
        buffer: usize,
    },
}

/// One node of the merged graph.
#[derive(Clone, Debug)]
pub struct ModeBuffer {
    /// What the node stands for.
    pub kind: ModeBufferKind,
    /// Words the node needs whenever live (for a persistent buffer: the
    /// max of its per-mode sizes, so every mode's view fits).
    pub size: u64,
    start: u64,
    dur: u64,
}

/// The merged cross-mode conflict graph (see the module docs for the
/// conflict rules).
#[derive(Clone, Debug)]
pub struct ModeConflictGraph {
    buffers: Vec<ModeBuffer>,
    adjacency: Vec<Vec<usize>>,
    /// `node_of[m][i]` — merged node of buffer `i` in mode `m`'s WIG.
    node_of: Vec<Vec<usize>>,
    persistent_count: usize,
}

impl ModeConflictGraph {
    /// Merges per-mode WIGs.
    ///
    /// `persistent[p]` gives, for each mode in order, the buffer index
    /// of declared persistent edge `p` inside that mode's WIG (length
    /// must equal `wigs.len()`; callers resolve the indices via
    /// `ModeGraph::resolve_persistent` + `IntersectionGraph::buffer_of_edge`).
    ///
    /// # Panics
    ///
    /// Panics when a `persistent` row has the wrong arity or indexes out
    /// of a mode's WIG — programming errors in the caller, not inputs.
    pub fn build(wigs: &[&IntersectionGraph], persistent: &[Vec<usize>]) -> Self {
        let n_modes = wigs.len();
        for row in persistent {
            assert_eq!(row.len(), n_modes, "one WIG index per mode");
        }
        // Mode windows: shift mode m by m × stride on a virtual
        // timeline, so same-mode timing survives and cross-mode windows
        // are disjoint.
        let stride = 1 + wigs
            .iter()
            .flat_map(|w| w.buffers().iter())
            .map(|b| b.lifetime.envelope_end())
            .max()
            .unwrap_or(0);
        // Which WIG buffers are persistent, per mode.
        let mut is_persistent: Vec<Vec<bool>> = wigs.iter().map(|w| vec![false; w.len()]).collect();
        for row in persistent {
            for (m, &i) in row.iter().enumerate() {
                is_persistent[m][i] = true;
            }
        }

        let mut buffers = Vec::new();
        let mut node_of: Vec<Vec<usize>> = wigs.iter().map(|w| vec![usize::MAX; w.len()]).collect();
        // Persistent nodes first: live over the whole horizon, so
        // duration-descending enumeration places them before any local.
        for (p, row) in persistent.iter().enumerate() {
            let size = row
                .iter()
                .enumerate()
                .map(|(m, &i)| wigs[m].buffer(i).lifetime.size())
                .max()
                .expect("at least one mode");
            for (m, &i) in row.iter().enumerate() {
                node_of[m][i] = buffers.len();
            }
            buffers.push(ModeBuffer {
                kind: ModeBufferKind::Persistent { index: p },
                size,
                start: 0,
                dur: (n_modes as u64) * stride,
            });
        }
        let persistent_count = buffers.len();
        // Then every mode's local buffers, in mode order then WIG order.
        for (m, wig) in wigs.iter().enumerate() {
            for (i, b) in wig.buffers().iter().enumerate() {
                if is_persistent[m][i] {
                    continue;
                }
                node_of[m][i] = buffers.len();
                let lt = &b.lifetime;
                buffers.push(ModeBuffer {
                    kind: ModeBufferKind::Local { mode: m, buffer: i },
                    size: lt.size(),
                    start: (m as u64) * stride + lt.start(),
                    dur: lt.envelope_end() - lt.start(),
                });
            }
        }

        let n = buffers.len();
        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
        // Persistent buffers conflict with everything (symmetrically;
        // the final dedup collapses the doubly-added persistent pairs).
        for p in 0..persistent_count {
            for other in 0..n {
                if other != p {
                    adjacency[p].push(other);
                    adjacency[other].push(p);
                }
            }
        }
        // Local-local conflicts come straight from each mode's WIG.
        for (m, wig) in wigs.iter().enumerate() {
            for i in 0..wig.len() {
                if is_persistent[m][i] {
                    continue;
                }
                let node = node_of[m][i];
                for &j in wig.neighbours(i) {
                    if is_persistent[m][j] {
                        continue; // already covered by persistent-vs-all
                    }
                    adjacency[node].push(node_of[m][j]);
                }
            }
        }
        for adj in &mut adjacency {
            adj.sort_unstable();
            adj.dedup();
        }
        ModeConflictGraph {
            buffers,
            adjacency,
            node_of,
            persistent_count,
        }
    }

    /// The merged nodes (persistent first, then mode locals).
    pub fn buffers(&self) -> &[ModeBuffer] {
        &self.buffers
    }

    /// Number of persistent nodes (they occupy indices `0..count`).
    pub fn persistent_count(&self) -> usize {
        self.persistent_count
    }

    /// Sum of the persistent node sizes — the `+ persistent bytes` term
    /// of the pool-size gate.
    pub fn persistent_words(&self) -> u64 {
        self.buffers[..self.persistent_count]
            .iter()
            .map(|b| b.size)
            .sum()
    }

    /// The merged node standing for buffer `i` of mode `m`'s WIG.
    pub fn node_of(&self, mode: usize, buffer: usize) -> usize {
        self.node_of[mode][buffer]
    }

    /// Projects a merged offset vector (indexed by merged node) back to
    /// per-mode offset vectors indexed by each mode's own WIG order —
    /// what each mode's plan lowering consumes.  Persistent buffers
    /// receive the *same* offset in every mode by construction.
    pub fn project_offsets(&self, offsets: &[u64]) -> Vec<Vec<u64>> {
        assert_eq!(offsets.len(), self.buffers.len());
        self.node_of
            .iter()
            .map(|row| row.iter().map(|&node| offsets[node]).collect())
            .collect()
    }

    /// Sum of all merged node sizes (the no-sharing upper bound).
    pub fn total_size(&self) -> u64 {
        self.buffers.iter().map(|b| b.size).sum()
    }
}

impl ConflictGraph for ModeConflictGraph {
    fn len(&self) -> usize {
        self.buffers.len()
    }

    fn size(&self, index: usize) -> u64 {
        self.buffers[index].size
    }

    fn start(&self, index: usize) -> u64 {
        self.buffers[index].start
    }

    fn duration(&self, index: usize) -> u64 {
        self.buffers[index].dur
    }

    fn conflicts(&self, index: usize) -> &[usize] {
        &self.adjacency[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::ScheduleTree;
    use sdf_core::schedule::{SasNode, SasTree};
    use sdf_core::{RepetitionsVector, SdfGraph};

    /// Two toy modes sharing a persistent edge `x -> y`.
    fn two_mode_wigs() -> (IntersectionGraph, IntersectionGraph, usize, usize) {
        let mut g0 = SdfGraph::new("m0");
        let x = g0.add_actor("x");
        let y = g0.add_actor("y");
        let a = g0.add_actor("a");
        let b = g0.add_actor("b");
        let pe0 = g0.add_edge_with_delay(x, y, 1, 1, 1).unwrap();
        g0.add_edge(a, b, 2, 1).unwrap();
        let q0 = RepetitionsVector::compute(&g0).unwrap();
        let sas0 = SasTree::new(SasNode::branch(
            1,
            SasNode::leaf(x, 1),
            SasNode::branch(
                1,
                SasNode::leaf(y, 1),
                SasNode::branch(1, SasNode::leaf(a, 1), SasNode::leaf(b, 2)),
            ),
        ));
        let tree0 = ScheduleTree::build(&g0, &q0, &sas0).unwrap();
        let wig0 = IntersectionGraph::build(&g0, &q0, &tree0);

        let mut g1 = SdfGraph::new("m1");
        let x = g1.add_actor("x");
        let y = g1.add_actor("y");
        let c = g1.add_actor("c");
        let pe1 = g1.add_edge_with_delay(x, y, 1, 1, 1).unwrap();
        g1.add_edge(y, c, 1, 1).unwrap();
        let q1 = RepetitionsVector::compute(&g1).unwrap();
        let sas1 = SasTree::new(SasNode::branch(
            1,
            SasNode::leaf(x, 1),
            SasNode::branch(1, SasNode::leaf(y, 1), SasNode::leaf(c, 1)),
        ));
        let tree1 = ScheduleTree::build(&g1, &q1, &sas1).unwrap();
        let wig1 = IntersectionGraph::build(&g1, &q1, &tree1);

        let p0 = wig0.buffer_of_edge(pe0).unwrap();
        let p1 = wig1.buffer_of_edge(pe1).unwrap();
        (wig0, wig1, p0, p1)
    }

    #[test]
    fn merge_rules_hold() {
        let (wig0, wig1, p0, p1) = two_mode_wigs();
        let mcg = ModeConflictGraph::build(&[&wig0, &wig1], &[vec![p0, p1]]);
        assert_eq!(mcg.persistent_count(), 1);
        // One persistent node + one local per mode.
        assert_eq!(mcg.len(), 3);
        // The persistent node conflicts with every local…
        assert_eq!(mcg.conflicts(0), &[1, 2]);
        // …and locals of different modes never conflict with each other.
        assert_eq!(mcg.conflicts(1), &[0]);
        assert_eq!(mcg.conflicts(2), &[0]);
        // Persistent duration dominates every local duration.
        assert!(mcg.duration(0) > mcg.duration(1));
        assert!(mcg.duration(0) > mcg.duration(2));
        // Persistent size is the max per-mode view.
        let s0 = wig0.buffer(p0).lifetime.size();
        let s1 = wig1.buffer(p1).lifetime.size();
        assert_eq!(mcg.size(0), s0.max(s1));
    }

    #[test]
    fn projection_gives_every_mode_the_same_persistent_offset() {
        let (wig0, wig1, p0, p1) = two_mode_wigs();
        let mcg = ModeConflictGraph::build(&[&wig0, &wig1], &[vec![p0, p1]]);
        let offsets = vec![0u64, 10, 10]; // locals may share; persistent may not
        let per_mode = mcg.project_offsets(&offsets);
        assert_eq!(per_mode.len(), 2);
        assert_eq!(per_mode[0].len(), wig0.len());
        assert_eq!(per_mode[1].len(), wig1.len());
        assert_eq!(per_mode[0][p0], per_mode[1][p1]);
        // Each local buffer got the merged node's offset.
        for (m, wig) in [(0, &wig0), (1, &wig1)] {
            for i in 0..wig.len() {
                assert_eq!(per_mode[m][i], offsets[mcg.node_of(m, i)]);
            }
        }
    }
}
