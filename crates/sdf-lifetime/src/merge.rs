//! Buffer merging across actors (the paper's §12 "future directions",
//! implemented).
//!
//! The coarse model assumes every output buffer of an actor is live for
//! the whole firing, so an actor's output can never share space with its
//! own input.  §12 observes that most actors *consume before they
//! produce* — an adder reads both operands before writing the sum — so the
//! output may overwrite the input in place.  The forthcoming-work
//! formalism quantifies this with the **consume-before-produce (CBP)**
//! parameter: the number of output tokens written while input tokens are
//! still needed (0 = fully in-place capable).
//!
//! This module implements the coarse-grained version of that idea on top
//! of the WIG: for every actor whose CBP permits it, the buffer on a
//! chosen input edge and the buffer on a chosen output edge are *merged*
//! into one region of size `max(in, out) + CBP`.  Merging is transitive
//! (chains of in-place actors collapse into one region); the merged
//! region's lifetime is the conservative hull of its members, so the
//! resulting allocation is always safe, merely sometimes larger than
//! necessary.

use std::collections::HashMap;

use sdf_core::graph::{ActorId, EdgeId, SdfGraph};

use crate::wig::{ConflictGraph, IntersectionGraph};

/// Per-actor consume-before-produce parameters.
///
/// Maps an actor to its CBP value; actors not present are treated as *not
/// mergeable* (infinite CBP).  Use [`CbpSpec::all_in_place`] for the
/// optimistic bound where every single-input/single-output actor is fully
/// in-place (`CBP = 0`).
#[derive(Clone, Debug, Default)]
pub struct CbpSpec {
    cbp: HashMap<ActorId, u64>,
}

impl CbpSpec {
    /// Creates an empty spec (no actor mergeable).
    pub fn new() -> Self {
        CbpSpec::default()
    }

    /// Declares `actor` to write at most `cbp` output tokens before its
    /// inputs are dead.
    pub fn set(&mut self, actor: ActorId, cbp: u64) -> &mut Self {
        self.cbp.insert(actor, cbp);
        self
    }

    /// Returns the CBP of `actor`, if declared.
    pub fn get(&self, actor: ActorId) -> Option<u64> {
        self.cbp.get(&actor).copied()
    }

    /// The optimistic spec: every actor of `graph` is fully in-place.
    pub fn all_in_place(graph: &SdfGraph) -> Self {
        let mut spec = CbpSpec::new();
        for a in graph.actors() {
            spec.set(a, 0);
        }
        spec
    }
}

/// The WIG after buffer merging: groups of coarse buffers collapsed into
/// shared regions.  Allocate it exactly like a WIG via [`ConflictGraph`].
#[derive(Clone, Debug)]
pub struct MergedGraph {
    /// For each region: the member buffer indices of the underlying WIG.
    regions: Vec<Vec<usize>>,
    /// Region sizes (`max(member sizes) + Σ CBP` of the merging actors).
    sizes: Vec<u64>,
    /// Region lifetime hulls (earliest start, latest envelope end).
    hulls: Vec<(u64, u64)>,
    /// Region conflict adjacency.
    adjacency: Vec<Vec<usize>>,
    /// Buffer index -> region index.
    region_of: Vec<usize>,
}

impl MergedGraph {
    /// Merges buffers of `wig` across actors permitted by `spec`.
    ///
    /// An actor merges the buffer of its first input edge with the buffer
    /// of its first output edge when its CBP is declared; the merged
    /// region is charged `+CBP` extra words.  (Choosing *which* in/out
    /// pair to merge optimally is itself a hard combinatorial problem;
    /// first-edge pairing is the simple deterministic policy.)
    pub fn build(graph: &SdfGraph, wig: &IntersectionGraph, spec: &CbpSpec) -> Self {
        let n = wig.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], i: usize) -> usize {
            if parent[i] != i {
                let root = find(parent, parent[i]);
                parent[i] = root;
                root
            } else {
                i
            }
        }
        let mut extra = vec![0u64; n]; // CBP surcharge per root
        let index_of_edge = |e: EdgeId| wig.buffer_of_edge(e).expect("wig covers all edges");

        for a in graph.actors() {
            let Some(cbp) = spec.get(a) else { continue };
            let (Some(&ein), Some(&eout)) = (graph.in_edges(a).first(), graph.out_edges(a).first())
            else {
                continue;
            };
            if ein == eout {
                continue; // self loop: nothing to merge
            }
            let (bi, bo) = (index_of_edge(ein), index_of_edge(eout));
            let (ri, ro) = (find(&mut parent, bi), find(&mut parent, bo));
            if ri != ro {
                parent[ro] = ri;
                extra[ri] += extra[ro] + cbp;
            } else {
                extra[ri] += cbp;
            }
        }

        // Collect regions.
        let mut region_slot = vec![usize::MAX; n];
        let mut region_of = vec![usize::MAX; n];
        let mut regions: Vec<Vec<usize>> = Vec::new();
        let mut sizes: Vec<u64> = Vec::new();
        let mut hulls: Vec<(u64, u64)> = Vec::new();
        for (i, slot) in region_of.iter_mut().enumerate() {
            let root = find(&mut parent, i);
            if region_slot[root] == usize::MAX {
                region_slot[root] = regions.len();
                regions.push(Vec::new());
                sizes.push(0);
                hulls.push((u64::MAX, 0));
            }
            let r = region_slot[root];
            *slot = r;
            regions[r].push(i);
            let lt = &wig.buffer(i).lifetime;
            sizes[r] = sizes[r].max(lt.size() + extra[root]);
            hulls[r].0 = hulls[r].0.min(lt.start());
            hulls[r].1 = hulls[r].1.max(lt.envelope_end());
        }

        // Region adjacency: regions conflict if any members conflict, or —
        // because merged regions use hull lifetimes — if either region is
        // merged and the hulls overlap.
        let m = regions.len();
        let mut adjacency = vec![Vec::new(); m];
        for r1 in 0..m {
            for r2 in (r1 + 1)..m {
                let member_conflict = regions[r1]
                    .iter()
                    .any(|&i| wig.conflicts(i).iter().any(|&j| region_of[j] == r2));
                let hull_needed = regions[r1].len() > 1 || regions[r2].len() > 1;
                let hull_conflict =
                    hull_needed && hulls[r1].0 < hulls[r2].1 && hulls[r2].0 < hulls[r1].1;
                if member_conflict || hull_conflict {
                    adjacency[r1].push(r2);
                    adjacency[r2].push(r1);
                }
            }
        }

        MergedGraph {
            regions,
            sizes,
            hulls,
            adjacency,
            region_of,
        }
    }

    /// Number of merged regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// The member buffer indices of region `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn members(&self, r: usize) -> &[usize] {
        &self.regions[r]
    }

    /// The region holding WIG buffer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn region_of(&self, i: usize) -> usize {
        self.region_of[i]
    }

    /// Total size if every region were placed disjointly.
    pub fn total_size(&self) -> u64 {
        self.sizes.iter().sum()
    }
}

impl ConflictGraph for MergedGraph {
    fn len(&self) -> usize {
        self.regions.len()
    }

    fn size(&self, index: usize) -> u64 {
        self.sizes[index]
    }

    fn start(&self, index: usize) -> u64 {
        self.hulls[index].0
    }

    fn duration(&self, index: usize) -> u64 {
        self.hulls[index].1 - self.hulls[index].0
    }

    fn conflicts(&self, index: usize) -> &[usize] {
        &self.adjacency[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::ScheduleTree;
    use sdf_core::repetitions::RepetitionsVector;
    use sdf_core::schedule::{SasNode, SasTree};

    /// Chain A -> B -> C, homogeneous rate 4: both buffers hold 4 words.
    fn chain() -> (SdfGraph, IntersectionGraph) {
        let mut g = SdfGraph::new("chain");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge(a, b, 4, 4).unwrap();
        g.add_edge(b, c, 4, 4).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let sas = SasTree::new(SasNode::branch(
            1,
            SasNode::leaf(a, 1),
            SasNode::branch(1, SasNode::leaf(b, 1), SasNode::leaf(c, 1)),
        ));
        let tree = ScheduleTree::build(&g, &q, &sas).unwrap();
        let wig = IntersectionGraph::build(&g, &q, &tree);
        (g, wig)
    }

    /// A minimal first-fit (index order) for tests, avoiding a dev-
    /// dependency cycle on `sdf-alloc`.
    fn first_fit_total<G: ConflictGraph>(g: &G) -> u64 {
        let n = g.len();
        let mut offsets = vec![0u64; n];
        let mut placed = vec![false; n];
        let mut total = 0;
        for i in 0..n {
            let mut ranges: Vec<(u64, u64)> = g
                .conflicts(i)
                .iter()
                .filter(|&&j| placed[j])
                .map(|&j| (offsets[j], offsets[j] + g.size(j)))
                .collect();
            ranges.sort_unstable();
            let mut cand = 0;
            for (s, e) in ranges {
                if cand + g.size(i) <= s {
                    break;
                }
                cand = cand.max(e);
            }
            offsets[i] = cand;
            placed[i] = true;
            total = total.max(cand + g.size(i));
        }
        total
    }

    #[test]
    fn in_place_chain_merges_to_one_region() {
        let (g, wig) = chain();
        assert_eq!(wig.total_size(), 8);
        let merged = MergedGraph::build(&g, &wig, &CbpSpec::all_in_place(&g));
        assert_eq!(merged.region_count(), 1);
        assert_eq!(merged.size(0), 4); // max(4, 4) + 0
        assert_eq!(merged.total_size(), 4);
        assert_eq!(merged.region_of(0), merged.region_of(1));
        assert_eq!(merged.members(0), &[0, 1]);
    }

    #[test]
    fn no_spec_means_no_merging() {
        let (g, wig) = chain();
        let merged = MergedGraph::build(&g, &wig, &CbpSpec::new());
        assert_eq!(merged.region_count(), 2);
        assert_eq!(merged.total_size(), 8);
        // The original conflict is preserved between the regions.
        assert_eq!(merged.conflicts(0), &[1]);
    }

    #[test]
    fn cbp_surcharge_added() {
        let (g, wig) = chain();
        let b = g.actor_by_name("B").unwrap();
        let mut spec = CbpSpec::new();
        spec.set(b, 2);
        let merged = MergedGraph::build(&g, &wig, &spec);
        assert_eq!(merged.region_count(), 1);
        assert_eq!(merged.size(0), 4 + 2);
    }

    #[test]
    fn merged_allocation_no_worse() {
        let (g, wig) = chain();
        let merged = MergedGraph::build(&g, &wig, &CbpSpec::all_in_place(&g));
        let plain = first_fit_total(&wig);
        let packed = first_fit_total(&merged);
        assert!(packed <= plain, "merging must not hurt: {packed} > {plain}");
        assert_eq!(packed, 4);
    }

    #[test]
    fn source_and_sink_actors_skipped() {
        // A source has no input buffer, a sink no output buffer: declaring
        // them in-place changes nothing.
        let (g, wig) = chain();
        let a = g.actor_by_name("A").unwrap();
        let c = g.actor_by_name("C").unwrap();
        let mut spec = CbpSpec::new();
        spec.set(a, 0);
        // C has an input but no output, so it cannot merge either.
        spec.set(c, 0);
        let merged = MergedGraph::build(&g, &wig, &spec);
        assert_eq!(merged.region_count(), 2);
    }

    #[test]
    fn hull_conservatism_keeps_distant_buffers_conflicting() {
        // Two in-place chains executed back to back: the merged hulls
        // overlap only if their member lifetimes do; disjoint chains still
        // overlay.
        let mut g = SdfGraph::new("two-chains");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        let d = g.add_actor("D");
        g.add_edge(a, b, 2, 2).unwrap();
        g.add_edge(c, d, 2, 2).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let sas = SasTree::new(SasNode::branch(
            1,
            SasNode::branch(1, SasNode::leaf(a, 1), SasNode::leaf(b, 1)),
            SasNode::branch(1, SasNode::leaf(c, 1), SasNode::leaf(d, 1)),
        ));
        let tree = ScheduleTree::build(&g, &q, &sas).unwrap();
        let wig = IntersectionGraph::build(&g, &q, &tree);
        let merged = MergedGraph::build(&g, &wig, &CbpSpec::all_in_place(&g));
        // B merges (A,B) with nothing (no out); D likewise: two regions,
        // disjoint in time, no conflicts.
        assert_eq!(merged.region_count(), 2);
        assert!(merged.conflicts(0).is_empty());
        assert_eq!(first_fit_total(&merged), 2);
    }
}
