//! Pool occupancy over logical time.
//!
//! Given a conflict graph and a finished allocation (one offset per
//! buffer), this module derives how the shared pool fills and drains as
//! the schedule executes, using the same start-sorted envelope sweep as
//! [`wig::sweep_adjacency`](crate::wig) — each buffer is counted live
//! across its lifetime envelope `[start, envelope_end)`, the coarse model
//! the allocator itself places against.
//!
//! Two series are tracked at every envelope transition:
//!
//! * **live words** — the sum of sizes of all envelope-live buffers: how
//!   much data the coarse model says exists at that instant.  Note this
//!   peak can *exceed* the allocated pool: allocation conflicts come from
//!   exact periodic-lifetime intersection, so two buffers whose envelopes
//!   overlap but whose exact lifetimes interleave may legally share
//!   addresses (the principled pool lower bound is the MCW estimate in
//!   [`clique`](crate::clique)).
//! * **occupied words** — the pool high-water mark `max(offset + size)`
//!   over live buffers: how far up the pool the layout reaches.  Its peak
//!   equals [`Allocation::total`](first-fit's pool size) exactly, because
//!   the buffer that defines the total is live at its own start and no
//!   live buffer ever reaches higher.
//!
//! The gap between the two peaks is the layout's waste; the per-decision
//! breakdown of that waste lives in `sdf_alloc::provenance`.

use std::collections::BTreeMap;

use crate::wig::{envelope_sweep, ConflictGraph, SweepEvent};

/// Pool state immediately after one envelope transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OccupancySample {
    /// Logical time of the transition (schedule clock steps).
    pub time: u64,
    /// Number of live buffers.
    pub live_buffers: u64,
    /// Sum of sizes of live buffers.
    pub live_words: u64,
    /// Pool high-water mark: `max(offset + size)` over live buffers.
    pub occupied_words: u64,
}

/// The occupancy timeline of one allocation: a step function sampled at
/// every envelope start and end.
#[derive(Clone, Debug)]
pub struct OccupancyTimeline {
    samples: Vec<OccupancySample>,
    peak_live: u64,
    peak_occupied: u64,
    end_time: u64,
}

impl OccupancyTimeline {
    /// Sweeps the buffers of `graph` (offsets parallel to buffer indices)
    /// and records the pool state after every envelope transition.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` does not have one entry per buffer.
    pub fn build<G: ConflictGraph + ?Sized>(graph: &G, offsets: &[u64]) -> Self {
        let n = graph.len();
        assert_eq!(
            n,
            offsets.len(),
            "one offset per buffer ({n} buffers, {} offsets)",
            offsets.len()
        );
        let mut live_buffers = 0u64;
        let mut live_words = 0u64;
        // Live pool tops (offset + size) with multiplicity; the largest
        // key is the current occupied high-water mark.
        let mut tops: BTreeMap<u64, u64> = BTreeMap::new();
        let mut raw: Vec<OccupancySample> = Vec::new();
        let mut peak_live = 0u64;
        let mut peak_occupied = 0u64;
        let mut end_time = 0u64;
        envelope_sweep(
            n,
            |i| graph.start(i),
            |i| graph.start(i) + graph.duration(i),
            |event| {
                let time = match event {
                    SweepEvent::Enter { index, time, .. } => {
                        live_buffers += 1;
                        live_words += graph.size(index);
                        *tops.entry(offsets[index] + graph.size(index)).or_insert(0) += 1;
                        time
                    }
                    SweepEvent::Retire { index, time } => {
                        live_buffers -= 1;
                        live_words -= graph.size(index);
                        let top = offsets[index] + graph.size(index);
                        let count = tops.get_mut(&top).expect("retiring live top");
                        *count -= 1;
                        if *count == 0 {
                            tops.remove(&top);
                        }
                        time
                    }
                };
                let occupied = tops.last_key_value().map_or(0, |(&top, _)| top);
                peak_live = peak_live.max(live_words);
                peak_occupied = peak_occupied.max(occupied);
                end_time = end_time.max(time);
                raw.push(OccupancySample {
                    time,
                    live_buffers,
                    live_words,
                    occupied_words: occupied,
                });
            },
        );
        // Coalesce simultaneous transitions: keep the state after the last
        // event at each time (the peaks above already saw every
        // intermediate state, including zero-length spikes).
        let mut samples: Vec<OccupancySample> = Vec::with_capacity(raw.len());
        for sample in raw {
            match samples.last_mut() {
                Some(last) if last.time == sample.time => *last = sample,
                _ => samples.push(sample),
            }
        }
        OccupancyTimeline {
            samples,
            peak_live,
            peak_occupied,
            end_time,
        }
    }

    /// The coalesced samples, ascending in time (one per distinct
    /// transition instant).
    pub fn samples(&self) -> &[OccupancySample] {
        &self.samples
    }

    /// Peak of the envelope-model live-words series.  May exceed the
    /// allocated pool when exact periodic lifetimes interleave inside
    /// overlapping envelopes; see the module docs.
    pub fn peak_live(&self) -> u64 {
        self.peak_live
    }

    /// Peak of the occupied-words series.  Equals the allocation's pool
    /// size (`max(offset + size)` over all buffers) exactly.
    pub fn peak_occupied(&self) -> u64 {
        self.peak_occupied
    }

    /// Time of the last envelope end (the timeline returns to empty here).
    pub fn end_time(&self) -> u64 {
        self.end_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::PeriodicLifetime;
    use crate::wig::{Buffer, IntersectionGraph};
    use sdf_core::graph::EdgeId;

    fn wig_of(lifetimes: Vec<PeriodicLifetime>) -> IntersectionGraph {
        IntersectionGraph::from_buffers(
            lifetimes
                .into_iter()
                .enumerate()
                .map(|(i, lifetime)| Buffer {
                    edge: EdgeId::from_index(i),
                    lifetime,
                })
                .collect(),
        )
    }

    #[test]
    fn empty_graph_has_empty_timeline() {
        let w = wig_of(vec![]);
        let t = OccupancyTimeline::build(&w, &[]);
        assert!(t.samples().is_empty());
        assert_eq!(t.peak_live(), 0);
        assert_eq!(t.peak_occupied(), 0);
    }

    #[test]
    fn disjoint_buffers_overlay() {
        // Two disjoint size-10 buffers share offset 0: live words spike to
        // 10 twice, occupancy peaks at 10, and the pool drains to zero.
        let w = wig_of(vec![
            PeriodicLifetime::solid(0, 2, 10),
            PeriodicLifetime::solid(2, 2, 10),
        ]);
        let t = OccupancyTimeline::build(&w, &[0, 0]);
        assert_eq!(t.peak_live(), 10);
        assert_eq!(t.peak_occupied(), 10);
        assert_eq!(t.end_time(), 4);
        let last = t.samples().last().unwrap();
        assert_eq!(last.live_words, 0);
        assert_eq!(last.occupied_words, 0);
        // The handoff at t=2 coalesces retire+enter into one sample.
        let at2 = t.samples().iter().find(|s| s.time == 2).unwrap();
        assert_eq!(at2.live_words, 10);
        assert_eq!(at2.live_buffers, 1);
    }

    #[test]
    fn stacked_buffers_sum() {
        let w = wig_of(vec![
            PeriodicLifetime::solid(0, 4, 3),
            PeriodicLifetime::solid(1, 4, 5),
        ]);
        let t = OccupancyTimeline::build(&w, &[0, 3]);
        assert_eq!(t.peak_live(), 8);
        assert_eq!(t.peak_occupied(), 8);
        let at1 = t.samples().iter().find(|s| s.time == 1).unwrap();
        assert_eq!(at1.live_buffers, 2);
        assert_eq!(at1.occupied_words, 8);
    }

    #[test]
    fn wasteful_layout_splits_the_peaks() {
        // One buffer alone, placed needlessly high: occupancy reaches 12
        // while only 4 words are ever live.
        let w = wig_of(vec![PeriodicLifetime::solid(0, 3, 4)]);
        let t = OccupancyTimeline::build(&w, &[8]);
        assert_eq!(t.peak_live(), 4);
        assert_eq!(t.peak_occupied(), 12);
    }

    #[test]
    fn zero_length_spike_still_counts_toward_peaks() {
        // A zero-duration envelope at t=1 occupies [0,7) for an instant;
        // the coalesced samples may hide it but the peaks must not.
        let w = wig_of(vec![
            PeriodicLifetime::solid(0, 3, 2),
            PeriodicLifetime::solid(1, 0, 7),
        ]);
        let t = OccupancyTimeline::build(&w, &[0, 2]);
        assert_eq!(t.peak_live(), 9);
        assert_eq!(t.peak_occupied(), 9);
    }
}
