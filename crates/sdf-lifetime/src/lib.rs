//! Buffer lifetime analysis for looped SDF schedules (§8–§9.1 of the DATE
//! 2000 lifetime-analysis paper).
//!
//! Given an R-schedule ([`sdf_core::SasTree`]), this crate derives for every
//! buffer:
//!
//! * its **timing** on the abstract schedule clock — one leaf invocation is
//!   one step ([`tree::ScheduleTree`]);
//! * its **periodic lifetime** `{start, (a_i), (loop_i)}` with exact
//!   liveness / next-occurrence / intersection queries
//!   ([`interval::PeriodicLifetime`]);
//! * the **weighted intersection graph** over all buffers
//!   ([`wig::IntersectionGraph`]) and the optimistic/pessimistic
//!   maximum-clique-weight estimates ([`clique`]).
//!
//! # Examples
//!
//! ```
//! use sdf_core::{SdfGraph, RepetitionsVector, SasNode, SasTree};
//! use sdf_lifetime::{tree::ScheduleTree, wig::IntersectionGraph};
//! use sdf_lifetime::clique::{mcw_optimistic, mcw_pessimistic};
//!
//! # fn main() -> Result<(), sdf_core::SdfError> {
//! let mut g = SdfGraph::new("fig2");
//! let a = g.add_actor("A");
//! let b = g.add_actor("B");
//! let c = g.add_actor("C");
//! g.add_edge(a, b, 20, 10)?;
//! g.add_edge(b, c, 20, 10)?;
//! let q = RepetitionsVector::compute(&g)?;
//! let sas = SasTree::new(SasNode::branch(
//!     1,
//!     SasNode::leaf(a, 1),
//!     SasNode::branch(2, SasNode::leaf(b, 1), SasNode::leaf(c, 2)),
//! ));
//! let tree = ScheduleTree::build(&g, &q, &sas)?;
//! let wig = IntersectionGraph::build(&g, &q, &tree);
//! assert!(mcw_optimistic(&wig) <= mcw_pessimistic(&wig));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod clique;
pub mod fine;
pub mod gantt;
pub mod interval;
pub mod merge;
pub mod modes;
pub mod occupancy;
pub mod tree;
pub mod wig;

pub use clique::{mcw_exact, mcw_optimistic, mcw_pessimistic};
pub use fine::{FineBuffer, FineIntersectionGraph, FineLifetime};
pub use interval::{buffer_lifetime, Period, PeriodicLifetime};
pub use merge::{CbpSpec, MergedGraph};
pub use modes::{ModeBuffer, ModeBufferKind, ModeConflictGraph};
pub use occupancy::{OccupancySample, OccupancyTimeline};
pub use tree::{ScheduleTree, TreeNodeId};
pub use wig::{Buffer, ConflictGraph, IntersectionGraph, WigSpliceStats};
