//! Maximum-clique-weight estimates for the WIG (§9.1).
//!
//! The maximum clique weight (MCW) — the largest total size of buffers
//! simultaneously live — lower-bounds the chromatic number (the memory any
//! allocation needs).  With periodic lifetimes, computing it exactly would
//! require scanning every occurrence start, so the paper uses two
//! heuristics:
//!
//! * **optimistic** (`mco`): only the *earliest* start of each buffer is
//!   scanned, summing the sizes of buffers live at that instant — this can
//!   miss the true maximum (Fig. 20), so it may under-estimate;
//! * **pessimistic** (`mcp`): periodicity is ignored entirely; every buffer
//!   is treated as live for its whole envelope, which can only
//!   over-estimate.

use crate::wig::IntersectionGraph;

/// The optimistic MCW estimate: the largest total live size observed at the
/// earliest start time of any buffer.
///
/// # Examples
///
/// ```
/// use sdf_core::graph::EdgeId;
/// use sdf_lifetime::interval::PeriodicLifetime;
/// use sdf_lifetime::wig::{Buffer, IntersectionGraph};
/// use sdf_lifetime::clique::{mcw_optimistic, mcw_pessimistic};
///
/// let wig = IntersectionGraph::from_buffers(vec![
///     Buffer { edge: EdgeId::from_index(0), lifetime: PeriodicLifetime::solid(0, 4, 5) },
///     Buffer { edge: EdgeId::from_index(1), lifetime: PeriodicLifetime::solid(2, 4, 3) },
/// ]);
/// assert_eq!(mcw_optimistic(&wig), 8);
/// assert_eq!(mcw_pessimistic(&wig), 8);
/// ```
pub fn mcw_optimistic(wig: &IntersectionGraph) -> u64 {
    let mut best = 0u64;
    for i in 0..wig.len() {
        let t = wig.buffer(i).lifetime.start();
        let mut weight = wig.buffer(i).lifetime.size();
        for &j in wig.neighbours(i) {
            if wig.buffer(j).lifetime.live_at(t) {
                weight += wig.buffer(j).lifetime.size();
            }
        }
        best = best.max(weight);
    }
    if sdf_trace::enabled() {
        // One expansion per (buffer, neighbour) pair scanned; closed form
        // over the adjacency so the scan loop stays untouched.
        let expansions: u64 = (0..wig.len()).map(|i| wig.neighbours(i).len() as u64).sum();
        sdf_trace::counter_add("lifetime.clique.expansions", expansions);
    }
    best
}

/// The pessimistic MCW estimate: periodicity ignored, every buffer live on
/// its whole envelope `[start, envelope_end)`.
pub fn mcw_pessimistic(wig: &IntersectionGraph) -> u64 {
    let mut best = 0u64;
    for i in 0..wig.len() {
        let t = wig.buffer(i).lifetime.start();
        let mut weight = 0u64;
        for j in 0..wig.len() {
            let lt = &wig.buffer(j).lifetime;
            if lt.start() <= t && t < lt.envelope_end() {
                weight += lt.size();
            }
        }
        best = best.max(weight);
    }
    if sdf_trace::enabled() {
        let n = wig.len() as u64;
        sdf_trace::counter_add("lifetime.clique.expansions", n * n);
    }
    best
}

/// The **exact** maximum clique weight, computed by scanning the start of
/// every occurrence of every buffer (the non-polynomial computation the
/// paper's two heuristics avoid, §9.1).
///
/// Any time of maximum overlap must contain some occurrence's start, so
/// scanning all occurrence starts is exact.  Returns `None` if the total
/// number of occurrences exceeds `budget` (to keep the worst case
/// bounded); use it to validate `mco <= exact <= mcp` on small instances.
pub fn mcw_exact(wig: &IntersectionGraph, budget: u64) -> Option<u64> {
    let total: u64 = (0..wig.len())
        .map(|i| wig.buffer(i).lifetime.occurrence_count())
        .sum();
    if total > budget {
        return None;
    }
    let mut best = 0u64;
    for i in 0..wig.len() {
        let lt = &wig.buffer(i).lifetime;
        for t in lt.occurrences() {
            let mut weight = lt.size();
            // Sum everything live at this occurrence start. Restricting to
            // neighbours is sound: non-neighbours are never live together
            // with buffer i at all.
            for &j in wig.neighbours(i) {
                if wig.buffer(j).lifetime.live_at(t) {
                    weight += wig.buffer(j).lifetime.size();
                }
            }
            best = best.max(weight);
        }
    }
    if sdf_trace::enabled() {
        let expansions: u64 = (0..wig.len())
            .map(|i| wig.buffer(i).lifetime.occurrence_count() * wig.neighbours(i).len() as u64)
            .sum();
        sdf_trace::counter_add("lifetime.clique.expansions", expansions);
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::{Period, PeriodicLifetime};
    use crate::wig::Buffer;
    use sdf_core::graph::EdgeId;

    fn wig_of(lifetimes: Vec<PeriodicLifetime>) -> IntersectionGraph {
        IntersectionGraph::from_buffers(
            lifetimes
                .into_iter()
                .enumerate()
                .map(|(i, lifetime)| Buffer {
                    edge: EdgeId::from_index(i),
                    lifetime,
                })
                .collect(),
        )
    }

    #[test]
    fn non_periodic_estimates_agree_and_are_exact() {
        // Stacked solid intervals: MCW = 5 + 3 at t = 2.
        let w = wig_of(vec![
            PeriodicLifetime::solid(0, 4, 5),
            PeriodicLifetime::solid(2, 4, 3),
            PeriodicLifetime::solid(6, 2, 100),
        ]);
        assert_eq!(mcw_optimistic(&w), 100);
        assert_eq!(mcw_pessimistic(&w), 100);
        let w2 = wig_of(vec![
            PeriodicLifetime::solid(0, 4, 5),
            PeriodicLifetime::solid(2, 4, 3),
        ]);
        assert_eq!(mcw_optimistic(&w2), 8);
        assert_eq!(mcw_pessimistic(&w2), 8);
    }

    #[test]
    fn optimistic_le_pessimistic() {
        let w = wig_of(vec![
            PeriodicLifetime::periodic(
                0,
                2,
                4,
                vec![Period {
                    stride: 6,
                    count: 3,
                }],
            ),
            PeriodicLifetime::periodic(
                2,
                2,
                7,
                vec![Period {
                    stride: 6,
                    count: 3,
                }],
            ),
            PeriodicLifetime::solid(0, 18, 2),
        ]);
        assert!(mcw_optimistic(&w) <= mcw_pessimistic(&w));
    }

    #[test]
    fn periodic_gaps_lower_the_optimistic_estimate() {
        // Two interleaved periodic buffers never live together; a solid
        // third overlaps both.
        let a = PeriodicLifetime::periodic(
            0,
            2,
            10,
            vec![Period {
                stride: 4,
                count: 2,
            }],
        );
        let b = PeriodicLifetime::periodic(
            2,
            2,
            20,
            vec![Period {
                stride: 4,
                count: 2,
            }],
        );
        let c = PeriodicLifetime::solid(0, 8, 1);
        let w = wig_of(vec![a, b, c]);
        // Optimistic: at t=2 (b's start) b + c = 21.
        assert_eq!(mcw_optimistic(&w), 21);
        // Pessimistic: envelopes of a and b overlap, so 10 + 20 + 1.
        assert_eq!(mcw_pessimistic(&w), 31);
    }

    #[test]
    fn fig20_optimistic_can_miss_true_mcw() {
        // A periodic buffer whose second occurrence overlaps a late solid
        // buffer: the true MCW occurs at the second occurrence's start,
        // which the optimistic scan never visits.
        let p = PeriodicLifetime::periodic(
            0,
            3,
            10,
            vec![Period {
                stride: 10,
                count: 2,
            }],
        );
        // Solid buffer live only during [11, 13): overlaps occurrence 2.
        let s = PeriodicLifetime::solid(11, 2, 10);
        // A second solid buffer at p's start, smaller.
        let s2 = PeriodicLifetime::solid(0, 2, 5);
        let w = wig_of(vec![p, s, s2]);
        // True MCW = 20 at t = 11; optimistic sees:
        //   t=0  -> p + s2 = 15
        //   t=11 -> s + p(live at 11? occurrence [10,13) yes!) = 20.
        // Here the start of `s` happens to catch it; shift s to start at 10
        // with p's occurrence [10,13): still caught. To build a true miss,
        // make the overlap interior-only:
        let p2 = PeriodicLifetime::periodic(
            0,
            5,
            10,
            vec![Period {
                stride: 10,
                count: 2,
            }],
        );
        let q2 = PeriodicLifetime::periodic(
            3,
            5,
            10,
            vec![Period {
                stride: 13,
                count: 2,
            }],
        );
        // p2 occurrences [0,5), [10,15); q2 occurrences [3,8), [16,21).
        // At t=3: both live -> caught. The optimistic scan examines only
        // earliest starts, so interior maxima of *later* occurrences are
        // what can be missed — verify the estimates still bracket sensibly.
        let w2 = wig_of(vec![p2, q2]);
        assert!(mcw_optimistic(&w2) <= mcw_pessimistic(&w2));
        assert_eq!(mcw_optimistic(&w), 20);
    }

    #[test]
    fn exact_mcw_brackets_the_estimates() {
        let w = wig_of(vec![
            PeriodicLifetime::periodic(
                0,
                2,
                10,
                vec![Period {
                    stride: 4,
                    count: 2,
                }],
            ),
            PeriodicLifetime::periodic(
                2,
                2,
                20,
                vec![Period {
                    stride: 4,
                    count: 2,
                }],
            ),
            PeriodicLifetime::solid(0, 8, 1),
        ]);
        let exact = mcw_exact(&w, 1000).expect("small instance");
        assert!(mcw_optimistic(&w) <= exact);
        assert!(exact <= mcw_pessimistic(&w));
        assert_eq!(exact, 21);
    }

    #[test]
    fn exact_mcw_finds_interior_maximum_fig20() {
        // A maximum that occurs only at a *later* occurrence of a periodic
        // buffer (Fig. 20's situation): exact sees it, optimistic may not.
        let p = PeriodicLifetime::periodic(
            0,
            3,
            10,
            vec![Period {
                stride: 10,
                count: 2,
            }],
        );
        let s = PeriodicLifetime::solid(11, 2, 10);
        let w = wig_of(vec![p, s]);
        assert_eq!(mcw_exact(&w, 100), Some(20));
    }

    #[test]
    fn exact_mcw_respects_budget() {
        let w = wig_of(vec![PeriodicLifetime::periodic(
            0,
            1,
            1,
            vec![Period {
                stride: 2,
                count: 100,
            }],
        )]);
        assert_eq!(mcw_exact(&w, 10), None);
        assert_eq!(mcw_exact(&w, 1000), Some(1));
    }

    #[test]
    fn empty_wig() {
        let w = wig_of(vec![]);
        assert_eq!(mcw_optimistic(&w), 0);
        assert_eq!(mcw_pessimistic(&w), 0);
        assert_eq!(mcw_exact(&w, 10), Some(0));
    }

    #[test]
    fn single_buffer() {
        let w = wig_of(vec![PeriodicLifetime::solid(0, 10, 42)]);
        assert_eq!(mcw_optimistic(&w), 42);
        assert_eq!(mcw_pessimistic(&w), 42);
    }
}
