//! Periodic buffer lifetimes (§8.3–8.4).
//!
//! A buffer's lifetime under a nested schedule is *periodic*: it is live
//! during
//!
//! ```text
//! [ start + Σ p_i·a_i ,  start + Σ p_i·a_i + dur )
//!     for all p_i in {0, …, loop(v_i) − 1}
//! ```
//!
//! where `v_1 … v_n` is the buffer's parent set (the least parent and its
//! ancestors) restricted to nodes with loop factors > 1, and
//! `a_i = dur(left(v_i)) + dur(right(v_i)) = dur(v_i)/loop(v_i)` is the
//! stride of one iteration of `v_i`.  Because loops nest, the strides
//! automatically satisfy the carry-free property
//! `a_i·(loop(v_i) − 1) ≤ a_{i+1}` the paper's Fig. 18 query relies on.
//!
//! Buffers with initial tokens (and any buffer whose source does not
//! strictly precede its sink in the schedule) are represented as *solid*
//! intervals spanning the whole period — §5's conservative treatment.

use sdf_core::graph::{EdgeId, SdfGraph};
use sdf_core::repetitions::RepetitionsVector;

use crate::tree::ScheduleTree;

/// One periodicity component: a stride and its iteration count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Period {
    /// Stride `a_i` between consecutive occurrences at this level.
    pub stride: u64,
    /// Number of iterations `loop(v_i)` (always ≥ 2 after filtering).
    pub count: u64,
}

/// The (possibly periodic) lifetime of one buffer, plus its size.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeriodicLifetime {
    /// Start of the first occurrence.
    start: u64,
    /// Length of each occurrence in schedule steps.
    dur: u64,
    /// Periodicity components, innermost (smallest stride) first.
    periods: Vec<Period>,
    /// Memory words needed whenever the buffer is live (the coarse model's
    /// array size).
    size: u64,
    /// True if the lifetime is one solid interval `[start, start+dur)`
    /// with no gaps (delays / degenerate cases); `periods` is then empty.
    solid: bool,
}

impl PeriodicLifetime {
    /// Creates a solid (non-periodic) lifetime `[start, start + dur)`.
    pub fn solid(start: u64, dur: u64, size: u64) -> Self {
        PeriodicLifetime {
            start,
            dur,
            periods: Vec::new(),
            size,
            solid: true,
        }
    }

    /// Creates a periodic lifetime.  `periods` must be ordered innermost
    /// (smallest stride) first and satisfy the nesting property
    /// `stride_i * count_i <= stride_{i+1}`; entries with `count <= 1` are
    /// dropped.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the nesting property is violated.
    pub fn periodic(start: u64, dur: u64, size: u64, periods: Vec<Period>) -> Self {
        let periods: Vec<Period> = periods.into_iter().filter(|p| p.count > 1).collect();
        debug_assert!(
            periods
                .windows(2)
                .all(|w| w[0].stride * w[0].count <= w[1].stride),
            "periods must nest: {periods:?}"
        );
        debug_assert!(
            periods.first().is_none_or(|p| dur <= p.stride),
            "occurrence longer than innermost stride: dur {dur} vs {periods:?}"
        );
        let solid = periods.is_empty();
        PeriodicLifetime {
            start,
            dur,
            periods,
            size,
            solid,
        }
    }

    /// Start of the first occurrence.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Length of each occurrence.
    pub fn dur(&self) -> u64 {
        self.dur
    }

    /// Buffer size in memory words.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The periodicity components, innermost first.
    pub fn periods(&self) -> &[Period] {
        &self.periods
    }

    /// True if the lifetime has no gaps.
    pub fn is_solid(&self) -> bool {
        self.solid
    }

    /// End of the last occurrence: the conservative envelope is
    /// `[start(), envelope_end())`.
    pub fn envelope_end(&self) -> u64 {
        self.start
            + self
                .periods
                .iter()
                .map(|p| p.stride * (p.count - 1))
                .sum::<u64>()
            + self.dur
    }

    /// Number of occurrences (product of the period counts).
    pub fn occurrence_count(&self) -> u64 {
        self.periods.iter().map(|p| p.count).product()
    }

    /// True if the buffer is live at time `T` (Fig. 18, with the iteration
    /// index capped at `loop − 1`).
    ///
    /// # Examples
    ///
    /// ```
    /// use sdf_lifetime::interval::{Period, PeriodicLifetime};
    /// // Fig. 17's buffer AB: start 0, dur 2, strides (4, 9) × (2, 2).
    /// let b = PeriodicLifetime::periodic(0, 2, 1, vec![
    ///     Period { stride: 4, count: 2 },
    ///     Period { stride: 9, count: 2 },
    /// ]);
    /// for t in [0, 1, 4, 5, 9, 10, 13, 14] {
    ///     assert!(b.live_at(t), "expected live at {t}");
    /// }
    /// for t in [2, 3, 6, 8, 11, 12, 15, 16, 100] {
    ///     assert!(!b.live_at(t), "expected dead at {t}");
    /// }
    /// ```
    pub fn live_at(&self, t: u64) -> bool {
        if t < self.start {
            return false;
        }
        let mut rem = t - self.start;
        for p in self.periods.iter().rev() {
            let k = (rem / p.stride).min(p.count - 1);
            rem -= k * p.stride;
        }
        rem < self.dur
    }

    /// The start of the first occurrence beginning at or after `t`, or
    /// `None` if all occurrences begin before `t`.
    ///
    /// This is the paper's mixed-radix increment: find the occurrence whose
    /// start is the greatest value ≤ `t`; if it is exactly `t` return it,
    /// otherwise increment the index vector in the basis
    /// `(loop(v_n), …, loop(v_1))`.
    pub fn next_occurrence_at_or_after(&self, t: u64) -> Option<u64> {
        if t <= self.start {
            return Some(self.start);
        }
        let mut rem = t - self.start;
        let m = self.periods.len();
        let mut ks = vec![0u64; m];
        // Greedy decomposition, outermost (largest stride) first.
        for (slot, p) in self.periods.iter().enumerate().rev() {
            let k = (rem / p.stride).min(p.count - 1);
            ks[slot] = k;
            rem -= k * p.stride;
        }
        if rem == 0 {
            return Some(t);
        }
        // Increment with carries, innermost digit first.
        for (slot, p) in self.periods.iter().enumerate() {
            if ks[slot] + 1 < p.count {
                ks[slot] += 1;
                for prev in &mut ks[..slot] {
                    *prev = 0;
                }
                let s = self.start
                    + ks.iter()
                        .zip(&self.periods)
                        .map(|(k, p)| k * p.stride)
                        .sum::<u64>();
                return Some(s);
            }
        }
        None
    }

    /// Iterates over all occurrence start times in increasing order.
    ///
    /// The number of occurrences is the product of the period counts —
    /// callers should check [`PeriodicLifetime::occurrence_count`] before
    /// collecting.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdf_lifetime::interval::{Period, PeriodicLifetime};
    /// let b = PeriodicLifetime::periodic(1, 2, 1, vec![
    ///     Period { stride: 4, count: 2 },
    ///     Period { stride: 9, count: 2 },
    /// ]);
    /// let starts: Vec<u64> = b.occurrences().collect();
    /// assert_eq!(starts, vec![1, 5, 10, 14]);
    /// ```
    pub fn occurrences(&self) -> Occurrences<'_> {
        Occurrences {
            lifetime: self,
            next: Some(self.start),
        }
    }

    /// True if any occurrence of the buffer intersects `[from, to)`.
    pub fn intersects_window(&self, from: u64, to: u64) -> bool {
        // A zero-length occurrence `[s, s)` is empty: a dur-0 lifetime is
        // never live, whatever its occurrence starts.
        if from >= to || self.dur == 0 {
            return false;
        }
        if self.live_at(from) {
            return true;
        }
        match self.next_occurrence_at_or_after(from) {
            Some(s) => s < to,
            None => false,
        }
    }

    /// True if the two lifetimes overlap at some schedule step.
    ///
    /// Exact whenever either side has at most `enumeration_cap`
    /// occurrences; beyond that it falls back to the conservative envelope
    /// test (which can only cause extra memory, never an invalid
    /// allocation).
    pub fn intersects(&self, other: &PeriodicLifetime) -> bool {
        self.intersects_with_cap(other, DEFAULT_ENUMERATION_CAP)
    }

    /// [`PeriodicLifetime::intersects`] with an explicit enumeration cap.
    pub fn intersects_with_cap(&self, other: &PeriodicLifetime, cap: u64) -> bool {
        // Zero-duration lifetimes are never live and intersect nothing —
        // checked up front so the test is symmetric (the enumeration below
        // would otherwise see empty windows in one direction only).
        if self.dur == 0 || other.dur == 0 {
            return false;
        }
        // Fast envelope rejection.
        if self.start >= other.envelope_end() || other.start >= self.envelope_end() {
            return false;
        }
        if self.solid && other.solid {
            return true; // envelopes overlap and both are gapless
        }
        let (few, many) = if self.occurrence_count() <= other.occurrence_count() {
            (self, other)
        } else {
            (other, self)
        };
        if few.occurrence_count() > cap {
            return true; // conservative
        }
        let mut occ = Some(few.start);
        while let Some(s) = occ {
            if many.intersects_window(s, s + few.dur) {
                return true;
            }
            occ = few.next_occurrence_at_or_after(s + 1);
        }
        false
    }
}

/// Default cap on occurrence enumeration in intersection tests.
pub const DEFAULT_ENUMERATION_CAP: u64 = 1 << 16;

/// Iterator over occurrence start times; created by
/// [`PeriodicLifetime::occurrences`].
pub struct Occurrences<'a> {
    lifetime: &'a PeriodicLifetime,
    next: Option<u64>,
}

impl Iterator for Occurrences<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let current = self.next?;
        self.next = self.lifetime.next_occurrence_at_or_after(current + 1);
        Some(current)
    }
}

/// Extracts the lifetime of the buffer on `edge` under the schedule
/// `tree` (Figs. 16–17 and §8.4).
///
/// Forward edges (source strictly before sink, no initial tokens) get a
/// precise periodic lifetime; edges with delays, self-loops or sources not
/// preceding their sinks get the conservative whole-period solid lifetime.
///
/// # Panics
///
/// Panics if `edge` does not belong to `graph` or if the tree was built
/// from a different graph.
pub fn buffer_lifetime(
    graph: &SdfGraph,
    q: &RepetitionsVector,
    tree: &ScheduleTree,
    edge: EdgeId,
) -> PeriodicLifetime {
    let e = graph.edge(edge);
    let total = tree.total_duration();
    if e.src == e.snk {
        let size = e.prod * q.get(e.src) + e.delay;
        return PeriodicLifetime::solid(0, total, size);
    }
    let u = tree.leaf(e.src);
    let v = tree.leaf(e.snk);
    let least = tree.least_parent(u, v);
    let (lleft, lright) = tree
        .children(least)
        .expect("least parent of two distinct leaves is internal");
    // The coarse-model array size: one least-parent iteration's production,
    // plus initial tokens.
    let size = q.tnse(graph, edge) / tree.iterations(least) + e.delay;

    // Conservative cases: initial tokens keep the buffer live from time 0,
    // and a sink lexically before its source (possible only with delays on
    // a cyclic graph) defeats the forward-lifetime derivation.
    let forward = tree.is_ancestor(lleft, u) && tree.is_ancestor(lright, v);
    if e.delay > 0 || !forward {
        return PeriodicLifetime::solid(0, total, size);
    }

    let start = tree.start(u);
    // Fig. 16: earliest stop time — the end of the sink leaf's last
    // invocation within one least-parent iteration.
    let mut stop = tree.stop(lright);
    let mut tmp = v;
    while tmp != lright {
        let parent = tree.parent(tmp).expect("walk stays under least parent");
        let (pl, pr) = tree.children(parent).expect("parent is internal");
        if pl == tmp {
            stop -= tree.dur(pr);
        }
        tmp = parent;
    }
    debug_assert!(stop > start, "lifetime must have positive duration");

    // §8.4: periodicity from the parent set (least parent and above),
    // keeping only loop factors > 1. Walking upward yields innermost-first
    // order, which is ascending stride order.
    let mut periods = Vec::new();
    let mut cur = Some(least);
    while let Some(node) = cur {
        let count = tree.loop_count(node);
        if count > 1 {
            periods.push(Period {
                stride: tree.dur(node) / count,
                count,
            });
        }
        cur = tree.parent(node);
    }
    PeriodicLifetime::periodic(start, stop - start, size, periods)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdf_core::schedule::{SasNode, SasTree};

    /// The §8.4 worked example: S 2( 2( (A B)(C D) ) (2E) ), chain S→A→…→E
    /// with a rate-4 source so q = (1, 4, 4, 4, 4, 4).
    fn paper_tree() -> (SdfGraph, RepetitionsVector, ScheduleTree) {
        let mut g = SdfGraph::new("fig15");
        let s = g.add_actor("S");
        let ids: Vec<_> = ["A", "B", "C", "D", "E"]
            .iter()
            .map(|n| g.add_actor(*n))
            .collect();
        g.add_edge(s, ids[0], 4, 1).unwrap();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], 1, 1).unwrap();
        }
        let q = RepetitionsVector::compute(&g).unwrap();
        let sas = SasTree::new(SasNode::branch(
            1,
            SasNode::leaf(s, 1),
            SasNode::branch(
                2,
                SasNode::branch(
                    2,
                    SasNode::branch(1, SasNode::leaf(ids[0], 1), SasNode::leaf(ids[1], 1)),
                    SasNode::branch(1, SasNode::leaf(ids[2], 1), SasNode::leaf(ids[3], 1)),
                ),
                SasNode::leaf(ids[4], 2),
            ),
        ));
        let tree = ScheduleTree::build(&g, &q, &sas).unwrap();
        (g, q, tree)
    }

    #[test]
    fn fig17_buffer_ab_strides() {
        let (g, q, tree) = paper_tree();
        let ab = g
            .edges()
            .find(|(_, e)| g.actor_name(e.src) == "A")
            .map(|(id, _)| id)
            .unwrap();
        let b = buffer_lifetime(&g, &q, &tree, ab);
        assert_eq!(b.start(), 1);
        assert_eq!(b.dur(), 2);
        assert_eq!(
            b.periods(),
            &[
                Period {
                    stride: 4,
                    count: 2
                },
                Period {
                    stride: 9,
                    count: 2
                }
            ]
        );
        // Fig. 17's live intervals, shifted by S's step:
        // [1,3), [5,7), [10,12), [14,16).
        let live: Vec<u64> = (0..19).filter(|&t| b.live_at(t)).collect();
        assert_eq!(live, vec![1, 2, 5, 6, 10, 11, 14, 15]);
        assert_eq!(b.envelope_end(), 16);
        assert_eq!(b.occurrence_count(), 4);
        assert_eq!(b.size(), 1);
    }

    #[test]
    fn stop_time_subtracts_trailing_siblings() {
        // Buffer (B, C): least parent is v1; C's last consumption within a
        // v1 iteration ends one step before D's leaf.
        let (g, q, tree) = paper_tree();
        let bc = g
            .edges()
            .find(|(_, e)| g.actor_name(e.src) == "B")
            .map(|(id, _)| id)
            .unwrap();
        let b = buffer_lifetime(&g, &q, &tree, bc);
        assert_eq!(b.start(), 2);
        assert_eq!(b.dur(), 2); // [2, 4)
        assert_eq!(
            b.periods(),
            &[
                Period {
                    stride: 4,
                    count: 2
                },
                Period {
                    stride: 9,
                    count: 2
                }
            ]
        );
    }

    #[test]
    fn buffer_crossing_root_split() {
        // Buffer (D, E): least parent is v2 (loop 2, stride 9).
        let (g, q, tree) = paper_tree();
        let de = g
            .edges()
            .find(|(_, e)| g.actor_name(e.src) == "D")
            .map(|(id, _)| id)
            .unwrap();
        let b = buffer_lifetime(&g, &q, &tree, de);
        assert_eq!(b.start(), 4);
        // D's production is drained by (2E) at step [9,10): dur = 10 - 4.
        assert_eq!(b.dur(), 6);
        assert_eq!(
            b.periods(),
            &[Period {
                stride: 9,
                count: 2
            }]
        );
        // Size: TNSE = 4 tokens over 2 v2 iterations = 2 per occurrence.
        assert_eq!(b.size(), 2);
    }

    #[test]
    fn delay_edge_is_solid_whole_period() {
        let mut g = SdfGraph::new("d");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let e = g.add_edge_with_delay(a, b, 1, 1, 3).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let sas = SasTree::new(SasNode::branch(1, SasNode::leaf(a, 1), SasNode::leaf(b, 1)));
        let tree = ScheduleTree::build(&g, &q, &sas).unwrap();
        let lt = buffer_lifetime(&g, &q, &tree, e);
        assert!(lt.is_solid());
        assert_eq!(lt.start(), 0);
        assert_eq!(lt.envelope_end(), tree.total_duration());
        assert_eq!(lt.size(), 1 + 3);
    }

    #[test]
    fn disjoint_periodic_buffers_do_not_intersect() {
        // Fig. 17's point: (A,B) and (C,D) have interleaved, disjoint
        // lifetimes and can share memory.
        let (g, q, tree) = paper_tree();
        let find = |n: &str| {
            g.edges()
                .find(|(_, e)| g.actor_name(e.src) == n)
                .map(|(id, _)| id)
                .unwrap()
        };
        let ab = buffer_lifetime(&g, &q, &tree, find("A"));
        let cd = buffer_lifetime(&g, &q, &tree, find("C"));
        assert!(!ab.intersects(&cd));
        let bc = buffer_lifetime(&g, &q, &tree, find("B"));
        assert!(ab.intersects(&bc));
        assert!(bc.intersects(&cd));
        // Intersection is symmetric.
        assert!(!cd.intersects(&ab));
        assert!(bc.intersects(&ab));
    }

    #[test]
    fn next_occurrence_walks_the_mixed_radix_counter() {
        let b = PeriodicLifetime::periodic(
            0,
            2,
            1,
            vec![
                Period {
                    stride: 4,
                    count: 2,
                },
                Period {
                    stride: 9,
                    count: 2,
                },
            ],
        );
        assert_eq!(b.next_occurrence_at_or_after(0), Some(0));
        assert_eq!(b.next_occurrence_at_or_after(1), Some(4));
        assert_eq!(b.next_occurrence_at_or_after(4), Some(4));
        assert_eq!(b.next_occurrence_at_or_after(5), Some(9));
        assert_eq!(b.next_occurrence_at_or_after(10), Some(13));
        assert_eq!(b.next_occurrence_at_or_after(14), None);
    }

    #[test]
    fn paper_increment_example() {
        // §8.4: strides (28, 13, 4) with loops (2, 2, 2) — the paper lists
        // them outermost-first; innermost-first they are (4, 13, 28).  At
        // k = (0,1,1) the number is 17; the increment gives 28.
        let b = PeriodicLifetime::periodic(
            0,
            3,
            1,
            vec![
                Period {
                    stride: 4,
                    count: 2,
                },
                Period {
                    stride: 13,
                    count: 2,
                },
                Period {
                    stride: 28,
                    count: 2,
                },
            ],
        );
        assert_eq!(b.next_occurrence_at_or_after(18), Some(28));
    }

    #[test]
    fn solid_interval_queries() {
        let s = PeriodicLifetime::solid(5, 10, 3);
        assert!(!s.live_at(4));
        assert!(s.live_at(5));
        assert!(s.live_at(14));
        assert!(!s.live_at(15));
        assert_eq!(s.envelope_end(), 15);
        assert_eq!(s.occurrence_count(), 1);
        assert_eq!(s.next_occurrence_at_or_after(3), Some(5));
        assert_eq!(s.next_occurrence_at_or_after(6), None);
    }

    #[test]
    fn solid_vs_periodic_intersection() {
        let solid = PeriodicLifetime::solid(2, 2, 1); // [2, 4)
        let periodic = PeriodicLifetime::periodic(
            0,
            2,
            1,
            vec![Period {
                stride: 4,
                count: 3,
            }],
        ); // [0,2), [4,6), [8,10)
        assert!(!solid.intersects(&periodic));
        let solid2 = PeriodicLifetime::solid(3, 3, 1); // [3, 6)
        assert!(solid2.intersects(&periodic));
    }

    #[test]
    fn envelope_fallback_is_conservative() {
        let a = PeriodicLifetime::periodic(
            0,
            1,
            1,
            vec![Period {
                stride: 2,
                count: 100,
            }],
        );
        let b = PeriodicLifetime::periodic(
            1,
            1,
            1,
            vec![Period {
                stride: 2,
                count: 100,
            }],
        );
        // Truly disjoint (even/odd), exact test sees it...
        assert!(!a.intersects(&b));
        // ...but with a tiny cap the conservative fallback reports overlap.
        assert!(a.intersects_with_cap(&b, 4));
    }

    #[test]
    fn self_loop_is_solid() {
        let mut g = SdfGraph::new("s");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge(a, b, 1, 1).unwrap();
        let e = g.add_edge_with_delay(a, a, 1, 1, 1).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let sas = SasTree::new(SasNode::branch(1, SasNode::leaf(a, 1), SasNode::leaf(b, 1)));
        let tree = ScheduleTree::build(&g, &q, &sas).unwrap();
        let lt = buffer_lifetime(&g, &q, &tree, e);
        assert!(lt.is_solid());
        assert_eq!(lt.size(), 2);
    }

    mod cap_conservative {
        use super::*;
        use proptest::prelude::*;

        fn lifetime_strategy() -> impl Strategy<Value = PeriodicLifetime> {
            (
                0u64..40,                                        // start
                0u64..6,                                         // dur
                prop::collection::vec((2u64..5, 2u64..4), 0..3), // (gap factor, count)
            )
                .prop_map(|(start, dur, levels)| {
                    let mut periods = Vec::new();
                    let mut stride = dur.max(1);
                    for (factor, count) in levels {
                        stride *= factor;
                        periods.push(Period { stride, count });
                        stride *= count;
                    }
                    PeriodicLifetime::periodic(start, dur, 1, periods)
                })
        }

        proptest! {
            /// The enumeration-cap fallback may only err towards overlap:
            /// whatever the cap, a capped test must never report two
            /// lifetimes disjoint when the uncapped (exact) test finds an
            /// intersection.  An unsound "disjoint" would let the allocator
            /// overlay two simultaneously-live buffers.
            #[test]
            fn capped_test_never_misses_an_overlap(
                a in lifetime_strategy(),
                b in lifetime_strategy(),
                cap in 0u64..32,
            ) {
                let exact = a.intersects_with_cap(&b, u64::MAX);
                let capped = a.intersects_with_cap(&b, cap);
                prop_assert!(
                    capped || !exact,
                    "cap {} reported disjoint but exact test overlaps", cap
                );
            }
        }
    }
}
