//! The schedule tree: an R-schedule annotated with abstract time (§8.1–8.3).
//!
//! Each invocation of a *leaf* of the schedule tree is one schedule step
//! (one unit of abstract time).  Durations, start times and stop times of
//! every loop nest follow by depth-first search:
//!
//! ```text
//! dur(leaf) = 1
//! dur(v)    = loop(v) · (dur(left(v)) + dur(right(v)))
//! ```
//!
//! `start`/`stop` locate each node's **first** iteration inside its parent's
//! first iteration; periodicity (later iterations) is handled symbolically
//! by [`crate::interval::PeriodicLifetime`].

use sdf_core::error::SdfError;
use sdf_core::graph::{ActorId, SdfGraph};
use sdf_core::repetitions::RepetitionsVector;
use sdf_core::schedule::{SasNode, SasTree};

/// Identifies a node of a [`ScheduleTree`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TreeNodeId(usize);

impl TreeNodeId {
    /// Returns the dense index of the node.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Clone, Debug)]
enum TreeNodeKind {
    Leaf { actor: ActorId },
    Internal { left: TreeNodeId, right: TreeNodeId },
}

#[derive(Clone, Debug)]
struct TreeNode {
    kind: TreeNodeKind,
    parent: Option<TreeNodeId>,
    /// `loop(v)`: iteration count (leaf residual factors count as loop
    /// factors of a single-leaf nest; see `ScheduleTree::build`).
    loop_count: u64,
    /// `dur(v)` in schedule steps.
    dur: u64,
    /// Start of the node's first iteration.
    start: u64,
    /// `start + dur`: end of the node's *last* iteration relative to its
    /// parent's first iteration.
    stop: u64,
    /// Iterations of this node per schedule period: the product of
    /// `loop(w)` for `w` on the path from the root to this node, inclusive.
    iterations: u64,
}

/// An R-schedule as a timed binary tree.
///
/// Built from a [`SasTree`]; leaves keep their residual repetition count as
/// the leaf's `loop` value (a leaf invocation of `(3 B)` is **one** schedule
/// step, matching the paper's convention that `2(A 3B)` takes 4 steps).
///
/// # Examples
///
/// ```
/// use sdf_core::{SdfGraph, RepetitionsVector, SasNode, SasTree};
/// use sdf_lifetime::tree::ScheduleTree;
///
/// # fn main() -> Result<(), sdf_core::SdfError> {
/// let mut g = SdfGraph::new("fig2");
/// let a = g.add_actor("A");
/// let b = g.add_actor("B");
/// let c = g.add_actor("C");
/// g.add_edge(a, b, 20, 10)?;
/// g.add_edge(b, c, 20, 10)?;
/// let q = RepetitionsVector::compute(&g)?;
/// // A (2 B (2C))
/// let sas = SasTree::new(SasNode::branch(
///     1,
///     SasNode::leaf(a, 1),
///     SasNode::branch(2, SasNode::leaf(b, 1), SasNode::leaf(c, 2)),
/// ));
/// let tree = ScheduleTree::build(&g, &q, &sas)?;
/// assert_eq!(tree.total_duration(), 1 + 2 * (1 + 1));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ScheduleTree {
    nodes: Vec<TreeNode>,
    root: TreeNodeId,
    /// Leaf node of each actor, indexed by actor index.
    leaf_of: Vec<Option<TreeNodeId>>,
}

impl ScheduleTree {
    /// Builds the timed tree for a validated SAS.
    ///
    /// # Errors
    ///
    /// Returns the error from [`SasTree::validate`] if the SAS does not
    /// match the graph and repetitions vector.
    pub fn build(graph: &SdfGraph, q: &RepetitionsVector, sas: &SasTree) -> Result<Self, SdfError> {
        let _span = sdf_trace::span!("lifetime.tree", actors = graph.actor_count());
        sas.validate(graph, q)?;
        sdf_trace::counter_inc("lifetime.tree.builds");
        let mut tree = ScheduleTree {
            nodes: Vec::new(),
            root: TreeNodeId(0),
            leaf_of: vec![None; graph.actor_count()],
        };
        let root = tree.convert(sas.root());
        tree.root = root;
        tree.annotate(root, None, 0, 1);
        Ok(tree)
    }

    /// Recursively converts a [`SasNode`], computing durations bottom-up.
    fn convert(&mut self, node: &SasNode) -> TreeNodeId {
        match node {
            SasNode::Leaf { actor, reps } => {
                let id = TreeNodeId(self.nodes.len());
                self.nodes.push(TreeNode {
                    kind: TreeNodeKind::Leaf { actor: *actor },
                    parent: None,
                    loop_count: *reps,
                    dur: 1,
                    start: 0,
                    stop: 0,
                    iterations: 1,
                });
                self.leaf_of[actor.index()] = Some(id);
                id
            }
            SasNode::Branch { count, left, right } => {
                let l = self.convert(left);
                let r = self.convert(right);
                let dur = count * (self.nodes[l.0].dur + self.nodes[r.0].dur);
                let id = TreeNodeId(self.nodes.len());
                self.nodes.push(TreeNode {
                    kind: TreeNodeKind::Internal { left: l, right: r },
                    parent: None,
                    loop_count: *count,
                    dur,
                    start: 0,
                    stop: 0,
                    iterations: 1,
                });
                self.nodes[l.0].parent = Some(id);
                self.nodes[r.0].parent = Some(id);
                id
            }
        }
    }

    /// Second pass: start/stop times and per-period iteration counts.
    fn annotate(&mut self, id: TreeNodeId, parent: Option<TreeNodeId>, start: u64, iters: u64) {
        let node = &mut self.nodes[id.0];
        node.parent = parent;
        node.start = start;
        node.stop = start + node.dur;
        node.iterations = iters * node.loop_count;
        let iters = node.iterations;
        if let TreeNodeKind::Internal { left, right } = node.kind {
            let left_dur = self.nodes[left.0].dur;
            self.annotate(left, Some(id), start, iters);
            self.annotate(right, Some(id), start + left_dur, iters);
        }
    }

    /// The root node.
    pub fn root(&self) -> TreeNodeId {
        self.root
    }

    /// Total schedule duration in steps (`dur(root)`).
    pub fn total_duration(&self) -> u64 {
        self.nodes[self.root.0].dur
    }

    /// `loop(v)` — iteration count of the node (leaf residual factors are
    /// reported as 1, matching §8.2's convention `loop(leaf) = 1`; a leaf's
    /// firings happen within its single schedule step).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn loop_count(&self, v: TreeNodeId) -> u64 {
        match self.nodes[v.0].kind {
            TreeNodeKind::Leaf { .. } => 1,
            TreeNodeKind::Internal { .. } => self.nodes[v.0].loop_count,
        }
    }

    /// The residual repetition count of a leaf (e.g. 3 for `(3 B)`), or
    /// `None` for internal nodes.
    pub fn leaf_reps(&self, v: TreeNodeId) -> Option<u64> {
        match self.nodes[v.0].kind {
            TreeNodeKind::Leaf { .. } => Some(self.nodes[v.0].loop_count),
            TreeNodeKind::Internal { .. } => None,
        }
    }

    /// `dur(v)` in schedule steps.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn dur(&self, v: TreeNodeId) -> u64 {
        self.nodes[v.0].dur
    }

    /// Start time of the node's first iteration.
    pub fn start(&self, v: TreeNodeId) -> u64 {
        self.nodes[v.0].start
    }

    /// Stop time (`start + dur`).
    pub fn stop(&self, v: TreeNodeId) -> u64 {
        self.nodes[v.0].stop
    }

    /// Iterations of `v` per schedule period (product of loop counts from
    /// the root down to `v`, using internal loop counts only for leaves'
    /// ancestors — a leaf's own residual factor is excluded since all its
    /// firings share one step).
    pub fn iterations(&self, v: TreeNodeId) -> u64 {
        match self.nodes[v.0].kind {
            // `iterations` accumulated the leaf's residual factor; undo it.
            TreeNodeKind::Leaf { .. } => self.nodes[v.0].iterations / self.nodes[v.0].loop_count,
            TreeNodeKind::Internal { .. } => self.nodes[v.0].iterations,
        }
    }

    /// Parent of `v`, or `None` for the root.
    pub fn parent(&self, v: TreeNodeId) -> Option<TreeNodeId> {
        self.nodes[v.0].parent
    }

    /// Children of an internal node.
    pub fn children(&self, v: TreeNodeId) -> Option<(TreeNodeId, TreeNodeId)> {
        match self.nodes[v.0].kind {
            TreeNodeKind::Leaf { .. } => None,
            TreeNodeKind::Internal { left, right } => Some((left, right)),
        }
    }

    /// The actor at a leaf, or `None` for internal nodes.
    pub fn leaf_actor(&self, v: TreeNodeId) -> Option<ActorId> {
        match self.nodes[v.0].kind {
            TreeNodeKind::Leaf { actor } => Some(actor),
            TreeNodeKind::Internal { .. } => None,
        }
    }

    /// The leaf node of `actor`.
    ///
    /// # Panics
    ///
    /// Panics if `actor` is out of range for the graph the tree was built
    /// from, or does not appear in the schedule.
    pub fn leaf(&self, actor: ActorId) -> TreeNodeId {
        self.leaf_of[actor.index()].expect("actor must appear in the schedule")
    }

    /// The smallest (least) parent of two leaves: their lowest common
    /// ancestor (§8.3, Definition 2).
    pub fn least_parent(&self, u: TreeNodeId, v: TreeNodeId) -> TreeNodeId {
        let mut ancestors = std::collections::HashSet::new();
        let mut cur = Some(u);
        while let Some(c) = cur {
            ancestors.insert(c);
            cur = self.parent(c);
        }
        let mut cur = Some(v);
        while let Some(c) = cur {
            if ancestors.contains(&c) {
                return c;
            }
            cur = self.parent(c);
        }
        unreachable!("two nodes of the same tree always share the root")
    }

    /// True if `descendant` lies in the subtree rooted at `ancestor`.
    pub fn is_ancestor(&self, ancestor: TreeNodeId, descendant: TreeNodeId) -> bool {
        let mut cur = Some(descendant);
        while let Some(c) = cur {
            if c == ancestor {
                return true;
            }
            cur = self.parent(c);
        }
        false
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Renders the tree as indented ASCII with timing annotations, e.g.
    ///
    /// ```text
    /// loop x2  [start 0, dur 18, iters 2]
    ///   loop x2  [start 0, dur 8, iters 4]
    ///     …
    ///     leaf B x1  [start 1, dur 1]
    /// ```
    pub fn render(&self, graph: &SdfGraph) -> String {
        let mut out = String::new();
        self.render_node(graph, self.root, 0, &mut out);
        out
    }

    fn render_node(&self, graph: &SdfGraph, v: TreeNodeId, depth: usize, out: &mut String) {
        use std::fmt::Write as _;
        let pad = "  ".repeat(depth);
        match self.nodes[v.0].kind {
            TreeNodeKind::Leaf { actor } => {
                let _ = writeln!(
                    out,
                    "{pad}leaf {} x{}  [start {}, dur {}]",
                    graph.actor_name(actor),
                    self.nodes[v.0].loop_count,
                    self.start(v),
                    self.dur(v)
                );
            }
            TreeNodeKind::Internal { left, right } => {
                let _ = writeln!(
                    out,
                    "{pad}loop x{}  [start {}, dur {}, iters {}]",
                    self.nodes[v.0].loop_count,
                    self.start(v),
                    self.dur(v),
                    self.iterations(v)
                );
                self.render_node(graph, left, depth + 1, out);
                self.render_node(graph, right, depth + 1, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the §8.4 worked example's shape:
    /// S 2( 2( (A B)(C D) ) (2E) ): strides 4 and 9 for buffer (A,B).
    /// The rate-4 source S forces q = (1, 4, 4, 4, 4, 4) so the nesting is
    /// a valid minimal-period SAS.
    fn paper_example() -> (SdfGraph, RepetitionsVector, SasTree) {
        let mut g = SdfGraph::new("fig15");
        let s = g.add_actor("S");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        let d = g.add_actor("D");
        let e = g.add_actor("E");
        g.add_edge(s, a, 4, 1).unwrap();
        g.add_edge(a, b, 1, 1).unwrap();
        g.add_edge(b, c, 1, 1).unwrap();
        g.add_edge(c, d, 1, 1).unwrap();
        g.add_edge(d, e, 1, 1).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        let sas = SasTree::new(SasNode::branch(
            1,
            SasNode::leaf(s, 1),
            SasNode::branch(
                2,
                SasNode::branch(
                    2,
                    SasNode::branch(1, SasNode::leaf(a, 1), SasNode::leaf(b, 1)),
                    SasNode::branch(1, SasNode::leaf(c, 1), SasNode::leaf(d, 1)),
                ),
                SasNode::leaf(e, 2),
            ),
        ));
        (g, q, sas)
    }

    #[test]
    fn durations_match_paper_convention() {
        let (g, q, sas) = paper_example();
        let tree = ScheduleTree::build(&g, &q, &sas).unwrap();
        // dur(root) = 1 + 2 * (2 * (2 + 2) + 1) = 19.
        assert_eq!(tree.total_duration(), 19);
        let a = tree.leaf(g.actor_by_name("A").unwrap());
        assert_eq!(tree.dur(a), 1);
        let ab = tree.parent(a).unwrap();
        assert_eq!(tree.dur(ab), 2);
        let v1 = tree.parent(ab).unwrap();
        assert_eq!(tree.dur(v1), 8);
        let v2 = tree.parent(v1).unwrap();
        assert_eq!(tree.dur(v2), 18);
        assert_eq!(tree.parent(v2), Some(tree.root()));
    }

    #[test]
    fn leaf_with_residual_count_is_one_step() {
        // X (2 (A (3B))): the (3B) invocation is one schedule step, so the
        // whole schedule takes 1 + 2·(1 + 1) = 5 steps (paper §8.1's
        // convention that 2(A 3B) takes 4 steps).
        let mut g = SdfGraph::new("t");
        let x = g.add_actor("X");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge(x, a, 2, 1).unwrap();
        g.add_edge(a, b, 3, 1).unwrap();
        let q = RepetitionsVector::compute(&g).unwrap();
        assert_eq!(q.as_slice(), &[1, 2, 6]);
        let sas = SasTree::new(SasNode::branch(
            1,
            SasNode::leaf(x, 1),
            SasNode::branch(2, SasNode::leaf(a, 1), SasNode::leaf(b, 3)),
        ));
        let tree = ScheduleTree::build(&g, &q, &sas).unwrap();
        assert_eq!(tree.total_duration(), 5);
        let bleaf = tree.leaf(b);
        assert_eq!(tree.dur(bleaf), 1);
        assert_eq!(tree.leaf_reps(bleaf), Some(3));
        assert_eq!(tree.loop_count(bleaf), 1);
        // First invocation of (3B) spans [2, 3).
        assert_eq!(tree.start(bleaf), 2);
        assert_eq!(tree.stop(bleaf), 3);
    }

    #[test]
    fn start_stop_first_iteration() {
        let (g, q, sas) = paper_example();
        let tree = ScheduleTree::build(&g, &q, &sas).unwrap();
        let name = |n: &str| tree.leaf(g.actor_by_name(n).unwrap());
        assert_eq!(tree.start(name("S")), 0);
        assert_eq!(tree.start(name("A")), 1);
        assert_eq!(tree.start(name("B")), 2);
        assert_eq!(tree.start(name("C")), 3);
        assert_eq!(tree.start(name("D")), 4);
        assert_eq!(tree.start(name("E")), 9);
        assert_eq!(tree.stop(name("E")), 10);
    }

    #[test]
    fn iterations_per_period() {
        let (g, q, sas) = paper_example();
        let tree = ScheduleTree::build(&g, &q, &sas).unwrap();
        let a = tree.leaf(g.actor_by_name("A").unwrap());
        let ab = tree.parent(a).unwrap();
        let v1 = tree.parent(ab).unwrap();
        let v2 = tree.parent(v1).unwrap();
        assert_eq!(tree.iterations(tree.root()), 1);
        assert_eq!(tree.iterations(v2), 2);
        assert_eq!(tree.iterations(v1), 4);
        assert_eq!(tree.iterations(ab), 4);
        assert_eq!(tree.iterations(a), 4);
        let e = tree.leaf(g.actor_by_name("E").unwrap());
        assert_eq!(tree.iterations(e), 2);
    }

    #[test]
    fn least_parent() {
        let (g, q, sas) = paper_example();
        let tree = ScheduleTree::build(&g, &q, &sas).unwrap();
        let name = |n: &str| tree.leaf(g.actor_by_name(n).unwrap());
        let lp_ab = tree.least_parent(name("A"), name("B"));
        assert_eq!(tree.dur(lp_ab), 2);
        let lp_bc = tree.least_parent(name("B"), name("C"));
        assert_eq!(tree.dur(lp_bc), 8); // v1
        let lp_de = tree.least_parent(name("D"), name("E"));
        assert_eq!(tree.dur(lp_de), 18); // v2
        let lp_se = tree.least_parent(name("S"), name("E"));
        assert_eq!(lp_se, tree.root());
        assert!(tree.is_ancestor(tree.root(), name("C")));
        assert!(!tree.is_ancestor(lp_ab, name("C")));
    }

    #[test]
    fn render_shows_structure() {
        let (g, q, sas) = paper_example();
        let tree = ScheduleTree::build(&g, &q, &sas).unwrap();
        let text = tree.render(&g);
        assert!(text.contains("leaf S x1  [start 0, dur 1]"), "{text}");
        assert!(
            text.contains("loop x2  [start 1, dur 8, iters 4]"),
            "{text}"
        );
        assert!(text.contains("leaf E x2"), "{text}");
    }

    #[test]
    fn invalid_sas_rejected() {
        let (g, q, _) = paper_example();
        let a = g.actor_by_name("A").unwrap();
        let bad = SasTree::new(SasNode::leaf(a, 1));
        assert!(ScheduleTree::build(&g, &q, &bad).is_err());
    }
}
