//! One-call convenience API over the full synthesis pipeline.
//!
//! [`Analysis::run`] takes a graph and produces everything the paper's
//! flow (Fig. 21) computes — repetitions vector, both heuristic orders,
//! non-shared and shared schedules, lifetimes, clique estimates, the
//! first-fit allocation and generated C — picking the best combination
//! the way Table 1's bold entries do.
//!
//! It is a thin wrapper over the candidate-lattice engine in
//! [`crate::engine`]: `Analysis::run(g)` is exactly
//! `AnalysisBuilder::default().run(g)`. Use the builder directly to
//! select heuristics, loop optimizers or allocation orders, or to get
//! per-candidate timings and the full scoreboard.

use sdf_alloc::Allocation;
use sdf_codegen::ExecutablePlan;
use sdf_core::error::SdfError;
use sdf_core::graph::SdfGraph;
use sdf_core::repetitions::RepetitionsVector;
use sdf_core::schedule::SasTree;
use sdf_lifetime::wig::IntersectionGraph;

use crate::engine::{AnalysisBuilder, Heuristic};

/// The complete result of analysing one SDF graph.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// The repetitions vector.
    pub repetitions: RepetitionsVector,
    /// Which heuristic produced the winning shared implementation.
    /// Compares against `"apgan"`/`"rpmc"` strings for back-compat.
    pub winner: Heuristic,
    /// Best non-shared `bufmem` over both heuristics (the baseline).
    pub nonshared_bufmem: u64,
    /// The winning shared schedule.
    pub schedule: SasTree,
    /// The winning schedule's intersection graph.
    pub wig: IntersectionGraph,
    /// The winning first-fit allocation.
    pub allocation: Allocation,
    /// Optimistic clique estimate for the winning schedule.
    pub mco: u64,
    /// Pessimistic clique estimate for the winning schedule.
    pub mcp: u64,
}

impl Analysis {
    /// Runs the full pipeline on `graph`.
    ///
    /// # Errors
    ///
    /// Propagates consistency and scheduling errors ([`SdfError`]); the
    /// graph must be consistent and acyclic.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdfmem::pipeline::Analysis;
    /// use sdfmem::apps::satrec::satellite_receiver;
    ///
    /// # fn main() -> Result<(), sdfmem::core::SdfError> {
    /// let analysis = Analysis::run(&satellite_receiver())?;
    /// assert!(analysis.shared_total() < analysis.nonshared_bufmem);
    /// # Ok(())
    /// # }
    /// ```
    pub fn run(graph: &SdfGraph) -> Result<Analysis, SdfError> {
        AnalysisBuilder::default().run(graph)
    }

    /// The shared memory pool size achieved.
    pub fn shared_total(&self) -> u64 {
        self.allocation.total()
    }

    /// The headline saving: `(nonshared − shared) / nonshared × 100`.
    pub fn saving_percent(&self) -> f64 {
        if self.nonshared_bufmem == 0 {
            return 0.0;
        }
        (self.nonshared_bufmem as f64 - self.shared_total() as f64) / self.nonshared_bufmem as f64
            * 100.0
    }

    /// Lowers the winning schedule and allocation into the typed
    /// [`ExecutablePlan`] IR — the single input both the C backend and
    /// the plan interpreter accept.
    ///
    /// # Errors
    ///
    /// Propagates lowering errors (cannot occur for an `Analysis`
    /// produced by [`Analysis::run`] on the same graph).
    pub fn plan(&self, graph: &SdfGraph) -> Result<ExecutablePlan, SdfError> {
        ExecutablePlan::lower_shared(
            graph,
            &self.repetitions,
            &self.schedule,
            &self.wig,
            &self.allocation,
        )
    }

    /// Generates the shared-pool C implementation of the winning
    /// schedule, by emitting the plan from [`Analysis::plan`].
    ///
    /// # Errors
    ///
    /// Propagates code-generation errors (cannot occur for an `Analysis`
    /// produced by [`Analysis::run`] on the same graph).
    pub fn generate_c(&self, graph: &SdfGraph) -> Result<String, SdfError> {
        Ok(sdf_codegen::emit_c(&self.plan(graph)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analysis_on_fig2() {
        let mut g = SdfGraph::new("fig2");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge(a, b, 20, 10).unwrap();
        g.add_edge(b, c, 20, 10).unwrap();
        let an = Analysis::run(&g).unwrap();
        assert_eq!(an.nonshared_bufmem, 40);
        assert!(an.shared_total() <= 40);
        assert!(an.mco <= an.mcp);
        assert!(an.winner == "apgan" || an.winner == "rpmc");
        let code = an.generate_c(&g).unwrap();
        assert!(code.contains("float mem["));
    }

    #[test]
    fn saving_percent_consistent() {
        let g = sdf_apps::satrec::satellite_receiver();
        let an = Analysis::run(&g).unwrap();
        let expect = (an.nonshared_bufmem as f64 - an.shared_total() as f64)
            / an.nonshared_bufmem as f64
            * 100.0;
        assert!((an.saving_percent() - expect).abs() < 1e-9);
        assert!(an.saving_percent() > 30.0);
    }

    #[test]
    fn inconsistent_graph_rejected() {
        let mut g = SdfGraph::new("bad");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge(a, b, 2, 1).unwrap();
        g.add_edge(a, b, 1, 1).unwrap();
        assert!(Analysis::run(&g).is_err());
    }
}
