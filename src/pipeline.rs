//! One-call convenience API over the full synthesis pipeline.
//!
//! [`Analysis::run`] takes a graph and produces everything the paper's
//! flow (Fig. 21) computes — repetitions vector, both heuristic orders,
//! non-shared and shared schedules, lifetimes, clique estimates, the
//! first-fit allocation and generated C — picking the best combination
//! the way Table 1's bold entries do.

use sdf_alloc::{allocate_both_orders, validate_allocation, Allocation};
use sdf_core::error::SdfError;
use sdf_core::graph::SdfGraph;
use sdf_core::repetitions::RepetitionsVector;
use sdf_core::schedule::SasTree;
use sdf_lifetime::clique::{mcw_optimistic, mcw_pessimistic};
use sdf_lifetime::tree::ScheduleTree;
use sdf_lifetime::wig::IntersectionGraph;
use sdf_sched::{apgan, dppo, rpmc, sdppo};

/// The complete result of analysing one SDF graph.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// The repetitions vector.
    pub repetitions: RepetitionsVector,
    /// Which heuristic produced the winning shared implementation
    /// (`"apgan"` or `"rpmc"`).
    pub winner: &'static str,
    /// Best non-shared `bufmem` over both heuristics (the baseline).
    pub nonshared_bufmem: u64,
    /// The winning shared schedule.
    pub schedule: SasTree,
    /// The winning schedule's intersection graph.
    pub wig: IntersectionGraph,
    /// The winning first-fit allocation.
    pub allocation: Allocation,
    /// Optimistic clique estimate for the winning schedule.
    pub mco: u64,
    /// Pessimistic clique estimate for the winning schedule.
    pub mcp: u64,
}

impl Analysis {
    /// Runs the full pipeline on `graph`.
    ///
    /// # Errors
    ///
    /// Propagates consistency and scheduling errors ([`SdfError`]); the
    /// graph must be consistent and acyclic.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdfmem::pipeline::Analysis;
    /// use sdfmem::apps::satrec::satellite_receiver;
    ///
    /// # fn main() -> Result<(), sdfmem::core::SdfError> {
    /// let analysis = Analysis::run(&satellite_receiver())?;
    /// assert!(analysis.shared_total() < analysis.nonshared_bufmem);
    /// # Ok(())
    /// # }
    /// ```
    pub fn run(graph: &SdfGraph) -> Result<Analysis, SdfError> {
        let q = RepetitionsVector::compute(graph)?;
        let mut best: Option<Analysis> = None;
        let mut best_nonshared = u64::MAX;
        for (label, order) in [("rpmc", rpmc(graph, &q)?), ("apgan", apgan(graph, &q)?)] {
            best_nonshared = best_nonshared.min(dppo(graph, &q, &order)?.bufmem);
            let shared = sdppo(graph, &q, &order)?;
            let tree = ScheduleTree::build(graph, &q, &shared.tree)?;
            let wig = IntersectionGraph::build(graph, &q, &tree);
            let (ffdur, ffstart) = allocate_both_orders(&wig);
            validate_allocation(&wig, &ffdur.allocation)?;
            validate_allocation(&wig, &ffstart.allocation)?;
            let allocation = if ffdur.allocation.total() <= ffstart.allocation.total() {
                ffdur.allocation
            } else {
                ffstart.allocation
            };
            let candidate = Analysis {
                repetitions: q.clone(),
                winner: label,
                nonshared_bufmem: 0, // patched below
                mco: mcw_optimistic(&wig),
                mcp: mcw_pessimistic(&wig),
                schedule: shared.tree,
                wig,
                allocation,
            };
            let better = match &best {
                None => true,
                Some(b) => candidate.allocation.total() < b.allocation.total(),
            };
            if better {
                best = Some(candidate);
            }
        }
        let mut analysis = best.expect("both heuristics ran");
        analysis.nonshared_bufmem = best_nonshared;
        Ok(analysis)
    }

    /// The shared memory pool size achieved.
    pub fn shared_total(&self) -> u64 {
        self.allocation.total()
    }

    /// The headline saving: `(nonshared − shared) / nonshared × 100`.
    pub fn saving_percent(&self) -> f64 {
        if self.nonshared_bufmem == 0 {
            return 0.0;
        }
        (self.nonshared_bufmem as f64 - self.shared_total() as f64)
            / self.nonshared_bufmem as f64
            * 100.0
    }

    /// Generates the shared-pool C implementation of the winning schedule.
    ///
    /// # Errors
    ///
    /// Propagates code-generation errors (cannot occur for an `Analysis`
    /// produced by [`Analysis::run`] on the same graph).
    pub fn generate_c(&self, graph: &SdfGraph) -> Result<String, SdfError> {
        sdf_codegen::generate_shared_c(
            graph,
            &self.repetitions,
            &self.schedule,
            &self.wig,
            &self.allocation,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analysis_on_fig2() {
        let mut g = SdfGraph::new("fig2");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge(a, b, 20, 10).unwrap();
        g.add_edge(b, c, 20, 10).unwrap();
        let an = Analysis::run(&g).unwrap();
        assert_eq!(an.nonshared_bufmem, 40);
        assert!(an.shared_total() <= 40);
        assert!(an.mco <= an.mcp);
        assert!(an.winner == "apgan" || an.winner == "rpmc");
        let code = an.generate_c(&g).unwrap();
        assert!(code.contains("float mem["));
    }

    #[test]
    fn saving_percent_consistent() {
        let g = sdf_apps::satrec::satellite_receiver();
        let an = Analysis::run(&g).unwrap();
        let expect = (an.nonshared_bufmem as f64 - an.shared_total() as f64)
            / an.nonshared_bufmem as f64
            * 100.0;
        assert!((an.saving_percent() - expect).abs() < 1e-9);
        assert!(an.saving_percent() > 30.0);
    }

    #[test]
    fn inconsistent_graph_rejected() {
        let mut g = SdfGraph::new("bad");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        g.add_edge(a, b, 2, 1).unwrap();
        g.add_edge(a, b, 1, 1).unwrap();
        assert!(Analysis::run(&g).is_err());
    }
}
