//! `sdfmem` — shared-memory implementations of synchronous dataflow
//! specifications using lifetime analysis.
//!
//! A reproduction of *Murthy & Bhattacharyya (DATE 2000)*: single
//! appearance schedules for SDF graphs whose buffers are packed into one
//! shared memory pool by analysing (periodic) buffer lifetimes, cutting
//! data memory by half or more versus per-edge buffers.
//!
//! This meta-crate re-exports the workspace members under short names:
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | SDF graphs, repetitions vectors, looped schedules, simulation, bounds |
//! | [`sched`] | APGAN, RPMC, DPPO, SDPPO, chain-precise DP, baselines |
//! | [`lifetime`] | schedule trees, periodic lifetimes, intersection graphs, clique estimates |
//! | [`alloc`] | first-fit dynamic storage allocation |
//! | [`codegen`] | C emission under both memory models |
//! | [`apps`] | every benchmark graph of the paper's evaluation |
//! | [`trace`] | span tracing, algorithm counters, trace/profile exporters |
//! | [`regress`] | regression-sentinel profiles and structured diffs |
//!
//! On top of the members, the crate hosts the synthesis drivers:
//! [`engine`] sweeps the candidate lattice (heuristic × loop optimizer ×
//! allocation order, optionally in parallel) behind the
//! [`AnalysisBuilder`] seam, [`pipeline`] keeps the classic one-call
//! [`Analysis`](pipeline::Analysis) wrapper over it, [`incremental`]
//! re-synthesises edited graphs along a delta path (cross-run chain-DP
//! memoization plus lifetime/WIG/allocation splicing, bit-identical to
//! cold runs), and [`sentinel`] captures regression-sentinel baseline
//! profiles from engine runs.
//!
//! # Examples
//!
//! The engine on the satellite receiver:
//!
//! ```
//! use sdfmem::{AnalysisBuilder, Heuristic};
//! use sdfmem::apps::satrec::satellite_receiver;
//!
//! # fn main() -> Result<(), sdfmem::core::SdfError> {
//! let analysis = AnalysisBuilder::new()
//!     .heuristics([Heuristic::Rpmc, Heuristic::Apgan])
//!     .run(&satellite_receiver())?;
//! assert!(analysis.shared_total() < analysis.nonshared_bufmem);
//! # Ok(())
//! # }
//! ```
//!
//! The same flow written out by hand:
//!
//! ```
//! use sdfmem::core::RepetitionsVector;
//! use sdfmem::sched::{apgan::apgan, sdppo::sdppo};
//! use sdfmem::lifetime::{tree::ScheduleTree, wig::IntersectionGraph};
//! use sdfmem::alloc::{allocate, AllocationOrder, PlacementPolicy};
//! use sdfmem::apps::satrec::satellite_receiver;
//!
//! # fn main() -> Result<(), sdfmem::core::SdfError> {
//! let graph = satellite_receiver();
//! let q = RepetitionsVector::compute(&graph)?;
//! let order = apgan(&graph, &q)?;
//! let shared = sdppo(&graph, &q, &order)?;
//! let tree = ScheduleTree::build(&graph, &q, &shared.tree)?;
//! let wig = IntersectionGraph::build(&graph, &q, &tree);
//! let alloc = allocate(&wig, AllocationOrder::DurationDescending, PlacementPolicy::FirstFit);
//! assert!(alloc.total() < wig.total_size()); // sharing saves memory
//! # Ok(())
//! # }
//! ```

pub mod engine;
pub mod incremental;
pub mod modes;
pub mod pipeline;
pub mod sentinel;

pub use engine::{
    AnalysisBuilder, Candidate, EngineReport, Heuristic, StageTimings, Synthesis, SynthesisOptions,
};
pub use incremental::{DeltaStats, EditOp, EditScript, IncrementalResult, IncrementalSession};
pub use modes::{synthesize_modes, ModeSummary, ModeSynthesis};
pub use pipeline::Analysis;

pub use sdf_alloc as alloc;
pub use sdf_apps as apps;
pub use sdf_codegen as codegen;
pub use sdf_core as core;
pub use sdf_lifetime as lifetime;
pub use sdf_regress as regress;
pub use sdf_sched as sched;
pub use sdf_trace as trace;
