//! The parallel candidate-lattice synthesis engine.
//!
//! The paper's Fig. 21 flow evaluates independent design points — a
//! topological-sort heuristic, a loop-hierarchy DP, an allocation order —
//! and keeps the Table 1 "bold entry" winner. This module makes that
//! lattice explicit and configurable:
//!
//! ```text
//! {RPMC, APGAN, custom order} × {SDPPO, DPPO, chain-precise} × {ffdur, ffstart, …}
//! ```
//!
//! [`AnalysisBuilder`] selects the swept subset, [`AnalysisBuilder::run`]
//! returns the winning [`Analysis`], and [`AnalysisBuilder::run_full`]
//! additionally returns every scored [`Candidate`] plus an
//! [`EngineReport`] with per-stage wall times and the winner rationale
//! (serialisable to JSON without external dependencies).
//!
//! Work is shared across the lattice: the repetitions vector is computed
//! once, each heuristic's order once, and the non-shared DPPO baseline
//! once per *distinct* order — a DPPO loop-hierarchy candidate reuses the
//! baseline's schedule tree instead of re-running the DP, and the
//! order-insensitive chain-precise DP runs at most once per graph.
//! Candidate evaluation (schedule → lifetime tree → WIG → allocation) is
//! embarrassingly parallel and runs on `rayon` scoped threads unless
//! [`AnalysisBuilder::parallel`] disables it; results are collected in
//! lattice order, so the winner is deterministic either way.
//!
//! # Examples
//!
//! ```
//! use sdfmem::engine::{AnalysisBuilder, Heuristic};
//! use sdfmem::apps::satrec::satellite_receiver;
//!
//! # fn main() -> Result<(), sdfmem::core::SdfError> {
//! let graph = satellite_receiver();
//! let synthesis = AnalysisBuilder::new()
//!     .heuristics([Heuristic::Rpmc, Heuristic::Apgan])
//!     .parallel(true)
//!     .run_full(&graph)?;
//! assert!(synthesis.analysis.shared_total() < synthesis.analysis.nonshared_bufmem);
//! assert_eq!(synthesis.report.candidates.len(), synthesis.candidates.len());
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::fmt;
use std::ops::Deref;
use std::str::FromStr;
use std::sync::Arc;
use std::time::Instant;

use rayon::prelude::*;
use sdf_alloc::{allocate, validate_allocation, Allocation, AllocationOrder, PlacementPolicy};
use sdf_core::error::SdfError;
use sdf_core::graph::{ActorId, SdfGraph};
use sdf_core::repetitions::RepetitionsVector;
use sdf_core::schedule::SasTree;
use sdf_lifetime::clique::{mcw_optimistic, mcw_pessimistic};
use sdf_lifetime::tree::ScheduleTree;
use sdf_lifetime::wig::IntersectionGraph;
use sdf_sched::variant::{schedule_variant_from_tables_memo, LoopVariant};
use sdf_sched::{apgan, dppo_from_tables_memo, rpmc, ChainTables, DpMode, MemoStore};

use crate::pipeline::Analysis;

/// Which topological-sort heuristic produced a lexical order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Heuristic {
    /// RPMC — top-down recursive min-cut partitioning (§7.2).
    Rpmc,
    /// APGAN — bottom-up pairwise clustering (§7.1).
    Apgan,
    /// A caller-supplied order ([`AnalysisBuilder::custom_order`]).
    Custom,
}

impl Heuristic {
    /// Short lower-case name (`rpmc`, `apgan`, `custom`).
    pub fn as_str(self) -> &'static str {
        match self {
            Heuristic::Rpmc => "rpmc",
            Heuristic::Apgan => "apgan",
            Heuristic::Custom => "custom",
        }
    }
}

impl fmt::Display for Heuristic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Back-compat string accessor: `Analysis::winner` used to be a
/// `&'static str`, so `*analysis.winner` and string comparisons keep
/// working.
impl Deref for Heuristic {
    type Target = str;

    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq<&str> for Heuristic {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<str> for Heuristic {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl FromStr for Heuristic {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "rpmc" => Ok(Heuristic::Rpmc),
            "apgan" => Ok(Heuristic::Apgan),
            "custom" => Ok(Heuristic::Custom),
            other => Err(format!(
                "unknown heuristic `{other}` (expected rpmc, apgan or custom)"
            )),
        }
    }
}

/// The full configuration of one engine run.
#[derive(Clone, Debug)]
pub struct SynthesisOptions {
    /// Topological-sort heuristics to sweep, in lattice order.
    pub heuristics: Vec<Heuristic>,
    /// The order used by [`Heuristic::Custom`] (required iff selected).
    pub custom_order: Option<Vec<ActorId>>,
    /// Loop-hierarchy DPs to sweep; inapplicable variants (chain-precise
    /// on a non-chain graph) are skipped silently.
    pub loop_opts: Vec<LoopVariant>,
    /// First-fit enumeration orders to sweep.
    pub allocation_orders: Vec<AllocationOrder>,
    /// Evaluate lattice cells on parallel threads.
    pub parallel: bool,
    /// How the chain DPs scan split positions. Both modes produce
    /// bit-identical schedules and costs; [`DpMode::Windowed`] (the
    /// default) probes far fewer splits on long chains, and
    /// [`DpMode::Exact`] remains as the verification/ablation reference.
    pub dp_mode: DpMode,
    /// Cross-run memo store for the windowed chain DPs. When set, chain
    /// tables are built with subchain hashers and every DP cell is
    /// content-addressed in the store, so repeated synthesis of similar
    /// graphs resolves shared subchains without recomputation. Results
    /// are bit-identical with and without a store; `None` (the default)
    /// keeps the classic single-shot behaviour and is required by the
    /// regression sentinel's deterministic-counter capture.
    pub memo: Option<Arc<MemoStore>>,
}

impl Default for SynthesisOptions {
    /// The configuration equivalent to the classic [`Analysis::run`]:
    /// RPMC and APGAN orders, SDPPO loop hierarchies, both paper
    /// allocation orders, parallel evaluation, windowed DP scans.
    fn default() -> Self {
        SynthesisOptions {
            heuristics: vec![Heuristic::Rpmc, Heuristic::Apgan],
            custom_order: None,
            loop_opts: vec![LoopVariant::Sdppo],
            allocation_orders: AllocationOrder::PAPER.to_vec(),
            parallel: true,
            dp_mode: DpMode::default(),
            memo: None,
        }
    }
}

/// Builder over [`SynthesisOptions`] — the public seam of the engine.
///
/// The default configuration reproduces the classic [`Analysis::run`]
/// results bit-for-bit; every method widens or narrows one lattice axis.
#[derive(Clone, Debug, Default)]
pub struct AnalysisBuilder {
    options: SynthesisOptions,
}

impl AnalysisBuilder {
    /// A builder with the [`SynthesisOptions::default`] configuration.
    pub fn new() -> Self {
        AnalysisBuilder::default()
    }

    /// Replaces the heuristic axis.
    #[must_use]
    pub fn heuristics(mut self, heuristics: impl IntoIterator<Item = Heuristic>) -> Self {
        self.options.heuristics = heuristics.into_iter().collect();
        self
    }

    /// Supplies the order for [`Heuristic::Custom`], appending `Custom`
    /// to the heuristic axis if it is not already selected.
    #[must_use]
    pub fn custom_order(mut self, order: Vec<ActorId>) -> Self {
        self.options.custom_order = Some(order);
        if !self.options.heuristics.contains(&Heuristic::Custom) {
            self.options.heuristics.push(Heuristic::Custom);
        }
        self
    }

    /// Replaces the loop-hierarchy axis.
    #[must_use]
    pub fn loop_opts(mut self, loop_opts: impl IntoIterator<Item = LoopVariant>) -> Self {
        self.options.loop_opts = loop_opts.into_iter().collect();
        self
    }

    /// Replaces the allocation-order axis.
    #[must_use]
    pub fn allocators(mut self, orders: impl IntoIterator<Item = AllocationOrder>) -> Self {
        self.options.allocation_orders = orders.into_iter().collect();
        self
    }

    /// Enables or disables parallel candidate evaluation. The winner is
    /// identical either way; only wall time changes.
    #[must_use]
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.options.parallel = parallel;
        self
    }

    /// Selects the chain-DP scan mode. Results are bit-identical in both
    /// modes; only the probe count (and wall time on long chains)
    /// changes.
    #[must_use]
    pub fn dp_mode(mut self, mode: DpMode) -> Self {
        self.options.dp_mode = mode;
        self
    }

    /// Installs a cross-run [`MemoStore`] for the windowed chain DPs.
    /// Results are bit-identical with and without one; warm stores skip
    /// the quadratic DP sweep for every content-matched subchain.
    #[must_use]
    pub fn memo(mut self, store: Arc<MemoStore>) -> Self {
        self.options.memo = Some(store);
        self
    }

    /// The configuration accumulated so far.
    pub fn options(&self) -> &SynthesisOptions {
        &self.options
    }

    /// Runs the engine and returns the winning [`Analysis`].
    ///
    /// # Errors
    ///
    /// Propagates consistency, scheduling and allocation errors
    /// ([`SdfError`]); also fails if the configuration is empty or
    /// [`Heuristic::Custom`] is selected without an order.
    pub fn run(&self, graph: &SdfGraph) -> Result<Analysis, SdfError> {
        Ok(self.run_full(graph)?.analysis)
    }

    /// Runs the engine and returns the winner plus every scored
    /// candidate and the instrumentation report.
    ///
    /// # Errors
    ///
    /// Same as [`AnalysisBuilder::run`].
    pub fn run_full(&self, graph: &SdfGraph) -> Result<Synthesis, SdfError> {
        run_engine(graph, &self.options)
    }
}

/// Wall times of the per-candidate pipeline stages, in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Loop-hierarchy DP (zero when the schedule was memoized).
    pub schedule_ns: u64,
    /// Schedule-tree construction (periodic lifetime extraction).
    pub lifetime_ns: u64,
    /// Intersection-graph construction plus clique estimates.
    pub wig_ns: u64,
    /// First-fit allocation plus validation.
    pub alloc_ns: u64,
}

impl StageTimings {
    /// Saturating sum of all stages, so pathological timings cannot wrap.
    pub fn total_ns(&self) -> u64 {
        self.schedule_ns
            .saturating_add(self.lifetime_ns)
            .saturating_add(self.wig_ns)
            .saturating_add(self.alloc_ns)
    }
}

/// One fully-evaluated point of the candidate lattice.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// Which heuristic produced the lexical order.
    pub heuristic: Heuristic,
    /// Which loop-hierarchy DP built the schedule.
    pub loop_opt: LoopVariant,
    /// Which enumeration order drove first-fit.
    pub allocation_order: AllocationOrder,
    /// The single appearance schedule.
    pub schedule: SasTree,
    /// The schedule's weighted intersection graph.
    pub wig: IntersectionGraph,
    /// The validated allocation.
    pub allocation: Allocation,
    /// The shared pool size ([`Allocation::total`]), the scoreboard key.
    pub shared_total: u64,
    /// Optimistic clique estimate of the WIG.
    pub mco: u64,
    /// Pessimistic clique estimate of the WIG.
    pub mcp: u64,
    /// Overlapping buffer pairs in the WIG.
    pub conflicts: usize,
    /// Whether the schedule was reused from the memoized DPPO baseline.
    pub memoized_schedule: bool,
    /// Per-stage wall times.
    pub timings: StageTimings,
    /// Work counters this candidate moved, as sorted `(name, delta)`
    /// pairs. Populated only for **serial** runs under an installed
    /// recorder — parallel cells interleave on the shared recorder, so
    /// per-candidate attribution would be noise. Cell-shared stage work
    /// (schedule, lifetimes, WIG) lands on the cell's first allocation
    /// order; the deltas across all candidates sum to the run totals.
    pub counters: Vec<(String, u64)>,
}

/// Per-heuristic order construction and baseline timings.
#[derive(Clone, Debug)]
pub struct OrderTiming {
    /// The heuristic.
    pub heuristic: Heuristic,
    /// Wall time of the order construction.
    pub order_ns: u64,
    /// Wall time of the non-shared DPPO baseline on this order (zero if
    /// another heuristic produced the identical order first).
    pub dppo_ns: u64,
    /// The baseline's non-shared bufmem for this order.
    pub nonshared_bufmem: u64,
}

/// Scoreboard row of one candidate (the [`Candidate`] minus its heavy
/// schedule/WIG/allocation payloads).
#[derive(Clone, Debug)]
pub struct CandidateReport {
    /// Which heuristic produced the lexical order.
    pub heuristic: Heuristic,
    /// Which loop-hierarchy DP built the schedule.
    pub loop_opt: LoopVariant,
    /// Which enumeration order drove first-fit.
    pub allocation_order: AllocationOrder,
    /// The shared pool size.
    pub shared_total: u64,
    /// Optimistic clique estimate.
    pub mco: u64,
    /// Pessimistic clique estimate.
    pub mcp: u64,
    /// Overlapping buffer pairs in the WIG.
    pub conflicts: usize,
    /// Whether the schedule was reused from the memoized baseline.
    pub memoized_schedule: bool,
    /// Per-stage wall times.
    pub timings: StageTimings,
    /// Per-candidate work-counter deltas (see [`Candidate::counters`]).
    pub counters: Vec<(String, u64)>,
    /// Whether this candidate won.
    pub winner: bool,
}

/// The observability record of one engine run.
#[derive(Clone, Debug)]
pub struct EngineReport {
    /// Graph name.
    pub graph: String,
    /// Actor count.
    pub actors: usize,
    /// Edge count.
    pub edges: usize,
    /// Whether candidates were evaluated in parallel.
    pub parallel: bool,
    /// Threads the parallel backend would use.
    pub threads: usize,
    /// The chain-DP scan mode the run used.
    pub dp_mode: DpMode,
    /// Wall time of the repetitions-vector computation.
    pub repetitions_ns: u64,
    /// Best non-shared bufmem over all swept orders (the baseline).
    pub nonshared_bufmem: u64,
    /// Per-heuristic order/baseline timings.
    pub orders: Vec<OrderTiming>,
    /// Scoreboard, in lattice order.
    pub candidates: Vec<CandidateReport>,
    /// Index of the winning row in `candidates`.
    pub winner: usize,
    /// Human-readable explanation of the winner choice.
    pub rationale: String,
    /// End-to-end wall time of the run.
    pub total_ns: u64,
    /// Algorithm counters collected during the run (empty unless a
    /// global [`sdf_trace::Recorder`] was installed), sorted by name so
    /// two reports of the same run serialise identically — the
    /// regression sentinel diffs this section with exact-match gating.
    pub counters: Vec<(String, u64)>,
}

/// Everything an engine run produces.
#[derive(Clone, Debug)]
pub struct Synthesis {
    /// The winning analysis (same shape the classic pipeline returned).
    pub analysis: Analysis,
    /// Every evaluated candidate, in lattice order.
    pub candidates: Vec<Candidate>,
    /// Instrumentation: timings, scoreboard, rationale.
    pub report: EngineReport,
}

impl Synthesis {
    /// Lowers the winning candidate into the typed
    /// [`sdf_codegen::ExecutablePlan`] IR — the only input the C
    /// backend and the plan interpreter accept.
    ///
    /// # Errors
    ///
    /// Propagates lowering errors (cannot occur for a `Synthesis`
    /// produced by the engine on the same graph).
    pub fn plan(&self, graph: &SdfGraph) -> Result<sdf_codegen::ExecutablePlan, SdfError> {
        self.analysis.plan(graph)
    }
}

impl EngineReport {
    /// Serialises the report as a self-contained JSON object (times in
    /// microseconds).
    pub fn to_json(&self) -> String {
        let mut s = sdf_trace::json::document_header("engine_report");
        s.reserve(1024);
        json_str(&mut s, "graph", &self.graph);
        s.push(',');
        json_num(&mut s, "actors", self.actors as u64);
        s.push(',');
        json_num(&mut s, "edges", self.edges as u64);
        s.push(',');
        json_bool(&mut s, "parallel", self.parallel);
        s.push(',');
        json_num(&mut s, "threads", self.threads as u64);
        s.push(',');
        json_str(&mut s, "dp_mode", self.dp_mode.as_str());
        s.push(',');
        json_us(&mut s, "repetitions_us", self.repetitions_ns);
        s.push(',');
        json_num(&mut s, "nonshared_bufmem", self.nonshared_bufmem);
        s.push_str(",\"orders\":[");
        for (i, o) in self.orders.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            json_str(&mut s, "heuristic", o.heuristic.as_str());
            s.push(',');
            json_us(&mut s, "order_us", o.order_ns);
            s.push(',');
            json_us(&mut s, "dppo_us", o.dppo_ns);
            s.push(',');
            json_num(&mut s, "nonshared_bufmem", o.nonshared_bufmem);
            s.push('}');
        }
        s.push_str("],\"candidates\":[");
        for (i, c) in self.candidates.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            json_str(&mut s, "heuristic", c.heuristic.as_str());
            s.push(',');
            json_str(&mut s, "loop_opt", c.loop_opt.as_str());
            s.push(',');
            json_str(&mut s, "allocation_order", c.allocation_order.as_str());
            s.push(',');
            json_num(&mut s, "shared_total", c.shared_total);
            s.push(',');
            json_num(&mut s, "mco", c.mco);
            s.push(',');
            json_num(&mut s, "mcp", c.mcp);
            s.push(',');
            json_num(&mut s, "conflicts", c.conflicts as u64);
            s.push(',');
            json_bool(&mut s, "memoized_schedule", c.memoized_schedule);
            s.push_str(",\"counters\":{");
            for (j, (name, value)) in c.counters.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                json_num(&mut s, name, *value);
            }
            s.push_str("},\"timings\":{");
            json_us(&mut s, "schedule_us", c.timings.schedule_ns);
            s.push(',');
            json_us(&mut s, "lifetime_us", c.timings.lifetime_ns);
            s.push(',');
            json_us(&mut s, "wig_us", c.timings.wig_ns);
            s.push(',');
            json_us(&mut s, "alloc_us", c.timings.alloc_ns);
            s.push(',');
            json_us(&mut s, "total_us", c.timings.total_ns());
            s.push_str("},");
            json_bool(&mut s, "winner", c.winner);
            s.push('}');
        }
        s.push_str("],");
        json_num(&mut s, "winner", self.winner as u64);
        s.push(',');
        json_str(&mut s, "rationale", &self.rationale);
        s.push(',');
        json_us(&mut s, "total_us", self.total_ns);
        s.push_str(",\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json_num(&mut s, name, *value);
        }
        s.push_str("}}");
        s
    }
}

impl fmt::Display for EngineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "engine report: {} ({} actors, {} edges), {} evaluation on {} threads, {} DP",
            self.graph,
            self.actors,
            self.edges,
            if self.parallel { "parallel" } else { "serial" },
            self.threads,
            self.dp_mode
        )?;
        writeln!(f, "non-shared baseline: {} words", self.nonshared_bufmem)?;
        writeln!(
            f,
            "{:<10} {:<14} {:<10} {:>8} {:>6} {:>6} {:>10}  winner",
            "heuristic", "loop-opt", "alloc", "shared", "mco", "mcp", "stage µs"
        )?;
        for c in &self.candidates {
            writeln!(
                f,
                "{:<10} {:<14} {:<10} {:>8} {:>6} {:>6} {:>10.1}  {}",
                c.heuristic.as_str(),
                c.loop_opt.as_str(),
                c.allocation_order.as_str(),
                c.shared_total,
                c.mco,
                c.mcp,
                c.timings.total_ns() as f64 / 1e3,
                if c.winner { "*" } else { "" }
            )?;
        }
        writeln!(f, "rationale: {}", self.rationale)?;
        write!(f, "total: {:.1} µs", self.total_ns as f64 / 1e3)
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_str(s: &mut String, key: &str, value: &str) {
    s.push('"');
    s.push_str(key);
    s.push_str("\":\"");
    s.push_str(&json_escape(value));
    s.push('"');
}

fn json_num(s: &mut String, key: &str, value: u64) {
    s.push('"');
    s.push_str(key);
    s.push_str("\":");
    s.push_str(&value.to_string());
}

fn json_bool(s: &mut String, key: &str, value: bool) {
    s.push('"');
    s.push_str(key);
    s.push_str("\":");
    s.push_str(if value { "true" } else { "false" });
}

fn json_us(s: &mut String, key: &str, ns: u64) {
    s.push('"');
    s.push_str(key);
    s.push_str("\":");
    s.push_str(&format!("{:.3}", ns as f64 / 1e3));
}

/// One schedule-level lattice cell handed to the (possibly parallel)
/// evaluator; allocation orders fan out inside the cell so they share
/// the cell's schedule tree and WIG.
struct Cell {
    heuristic: Heuristic,
    loop_opt: LoopVariant,
    /// The shared chain tables of the cell's lexical order — one build
    /// per distinct order serves the baseline and every candidate DP.
    tables: Arc<ChainTables>,
    /// Memoized schedule (the DPPO baseline tree), if one applies.
    memoized: Option<SasTree>,
}

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn run_engine(graph: &SdfGraph, options: &SynthesisOptions) -> Result<Synthesis, SdfError> {
    let _run_span = sdf_trace::span!("engine.run", graph = graph.name());
    let t_run = Instant::now();
    if options.heuristics.is_empty()
        || options.loop_opts.is_empty()
        || options.allocation_orders.is_empty()
    {
        return Err(SdfError::InvalidSchedule(
            "empty candidate lattice: every SynthesisOptions axis needs at least one entry"
                .to_string(),
        ));
    }

    let t = Instant::now();
    let q = {
        let _span = sdf_trace::span!("engine.repetitions");
        RepetitionsVector::compute(graph)?
    };
    let repetitions_ns = elapsed_ns(t);

    // Stage 1: one lexical order per heuristic.
    let mut orders: Vec<(Heuristic, Vec<ActorId>, u64)> = Vec::new();
    for &heuristic in &options.heuristics {
        if orders.iter().any(|(h, _, _)| *h == heuristic) {
            continue; // duplicate axis entry
        }
        let t = Instant::now();
        let _span = sdf_trace::span!("engine.order", heuristic = heuristic);
        let order = match heuristic {
            Heuristic::Rpmc => rpmc(graph, &q)?,
            Heuristic::Apgan => apgan(graph, &q)?,
            Heuristic::Custom => options.custom_order.clone().ok_or_else(|| {
                SdfError::InvalidSchedule(
                    "Heuristic::Custom selected without AnalysisBuilder::custom_order".to_string(),
                )
            })?,
        };
        orders.push((heuristic, order, elapsed_ns(t)));
    }

    // Stage 2: shared chain tables plus the non-shared DPPO baseline,
    // both memoized per distinct order. The tables (gcd table + prefix
    // sums) are the O(n²) preprocessing every chain DP needs; one build
    // serves the baseline and every dppo/sdppo candidate on that order.
    let mut tables: HashMap<&[ActorId], Arc<ChainTables>> = HashMap::new();
    let mut baselines: HashMap<&[ActorId], (sdf_sched::DppoResult, u64)> = HashMap::new();
    let mut order_timings: Vec<OrderTiming> = Vec::new();
    for (heuristic, order, order_ns) in &orders {
        let (baseline, dppo_ns) = match baselines.get(order.as_slice()) {
            Some((b, _)) => {
                sdf_trace::counter_inc("engine.dppo_memo_hits");
                (b.clone(), 0)
            }
            None => {
                sdf_trace::counter_inc("engine.dppo_memo_misses");
                let t = Instant::now();
                let _span = sdf_trace::span!("engine.baseline", heuristic = heuristic);
                // A cross-run memo wants content-hashed tables; without
                // one the hasher build would be dead weight.
                let ct = Arc::new(match options.memo {
                    Some(_) => ChainTables::build_hashed(graph, &q, order)?,
                    None => ChainTables::build(graph, &q, order)?,
                });
                let b = dppo_from_tables_memo(&ct, &q, options.dp_mode, options.memo.as_deref());
                let ns = elapsed_ns(t);
                tables.insert(order.as_slice(), ct);
                baselines.insert(order.as_slice(), (b.clone(), ns));
                (b, ns)
            }
        };
        order_timings.push(OrderTiming {
            heuristic: *heuristic,
            order_ns: *order_ns,
            dppo_ns,
            nonshared_bufmem: baseline.bufmem,
        });
    }
    let nonshared_bufmem = order_timings
        .iter()
        .map(|o| o.nonshared_bufmem)
        .min()
        .expect("at least one heuristic");

    // Stage 3: assemble the schedule-level cells. Chain-precise ignores
    // the lexical order, so it contributes one cell total, attributed to
    // the first heuristic.
    let mut cells: Vec<Cell> = Vec::new();
    for (heuristic, order, _) in &orders {
        for &loop_opt in &options.loop_opts {
            if !loop_opt.applicable_to(graph) {
                continue;
            }
            if !loop_opt.order_sensitive() && *heuristic != orders[0].0 {
                continue;
            }
            let memoized = if loop_opt == LoopVariant::Dppo {
                baselines.get(order.as_slice()).map(|(b, _)| b.tree.clone())
            } else {
                None
            };
            cells.push(Cell {
                heuristic: *heuristic,
                loop_opt,
                tables: Arc::clone(&tables[order.as_slice()]),
                memoized,
            });
        }
    }
    if cells.is_empty() {
        return Err(SdfError::InvalidSchedule(
            "no applicable candidates: selected loop variants cannot run on this graph".to_string(),
        ));
    }

    // Stage 4: evaluate every cell — schedule, lifetimes, WIG, clique
    // estimates, then one allocation per enumeration order.
    let allocation_orders = &options.allocation_orders;
    // Per-candidate counter attribution needs exclusive use of the
    // shared recorder: serial runs difference a snapshot around each
    // candidate; parallel cells interleave, so they skip attribution.
    let attribute_counters = !options.parallel && sdf_trace::enabled();
    let dp_mode = options.dp_mode;
    let memo = options.memo.clone();
    let evaluate = |cell: Cell| -> Result<Vec<Candidate>, SdfError> {
        let _cell_span = sdf_trace::span!(
            "engine.candidate",
            heuristic = cell.heuristic,
            loop_opt = cell.loop_opt.as_str()
        );
        let mut snapshot = attribute_counters.then(sdf_trace::CounterSnapshot::capture);
        let mut timings = StageTimings::default();
        let t = Instant::now();
        let (schedule, memoized_schedule) = {
            let _span = sdf_trace::span!("candidate.schedule", memoized = cell.memoized.is_some());
            match cell.memoized {
                Some(tree) => (tree, true),
                None => {
                    // Every DP candidate past the baseline runs on the
                    // order's shared tables instead of rebuilding them —
                    // the sentinel gates on this reuse counter.
                    if cell.loop_opt.order_sensitive() {
                        sdf_trace::counter_inc("engine.chain_tables.reuses");
                    }
                    (
                        schedule_variant_from_tables_memo(
                            graph,
                            &q,
                            &cell.tables,
                            cell.loop_opt,
                            dp_mode,
                            memo.as_deref(),
                        )?
                        .tree,
                        false,
                    )
                }
            }
        };
        timings.schedule_ns = elapsed_ns(t);

        let t = Instant::now();
        let tree = {
            let _span = sdf_trace::span!("candidate.lifetime");
            ScheduleTree::build(graph, &q, &schedule)?
        };
        timings.lifetime_ns = elapsed_ns(t);

        let t = Instant::now();
        let _wig_span = sdf_trace::span!("candidate.wig");
        let wig = IntersectionGraph::build(graph, &q, &tree);
        let (mco, mcp) = (mcw_optimistic(&wig), mcw_pessimistic(&wig));
        let conflicts = wig.conflict_count();
        drop(_wig_span);
        timings.wig_ns = elapsed_ns(t);

        let mut out = Vec::with_capacity(allocation_orders.len());
        for &allocation_order in allocation_orders {
            let t = Instant::now();
            let _span = sdf_trace::span!("candidate.alloc", order = allocation_order);
            let allocation = allocate(&wig, allocation_order, PlacementPolicy::FirstFit);
            validate_allocation(&wig, &allocation)?;
            drop(_span);
            let alloc_ns = elapsed_ns(t);
            let shared_total = allocation.total();
            let counters = match snapshot.as_mut() {
                Some(snap) => {
                    let delta = snap.delta_since();
                    *snap = sdf_trace::CounterSnapshot::capture();
                    delta
                }
                None => Vec::new(),
            };
            out.push(Candidate {
                heuristic: cell.heuristic,
                loop_opt: cell.loop_opt,
                allocation_order,
                schedule: schedule.clone(),
                wig: wig.clone(),
                allocation,
                shared_total,
                mco,
                mcp,
                conflicts,
                memoized_schedule,
                timings: StageTimings {
                    alloc_ns,
                    ..timings
                },
                counters,
            });
        }
        Ok(out)
    };

    let evaluated: Result<Vec<Vec<Candidate>>, SdfError> = if options.parallel {
        cells.into_par_iter().map(evaluate).collect()
    } else {
        cells.into_iter().map(evaluate).collect()
    };
    let candidates: Vec<Candidate> = evaluated?.into_iter().flatten().collect();
    sdf_trace::counter_add("engine.candidates", candidates.len() as u64);

    // Stage 5: the Table 1 "bold entry" rule — smallest shared pool,
    // ties to the earliest lattice point.
    let winner = candidates
        .iter()
        .enumerate()
        .min_by_key(|(i, c)| (c.shared_total, *i))
        .map(|(i, _)| i)
        .expect("at least one candidate");
    let best = &candidates[winner];
    let runner_up = candidates
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != winner)
        .min_by_key(|(i, c)| (c.shared_total, *i))
        .map(|(_, c)| c);
    let rationale = match runner_up {
        Some(r) => format!(
            "{}x{}x{} wins with a {}-word pool ({} candidates; runner-up {}x{}x{} at {}; \
             non-shared baseline {})",
            best.heuristic,
            best.loop_opt,
            best.allocation_order,
            best.shared_total,
            candidates.len(),
            r.heuristic,
            r.loop_opt,
            r.allocation_order,
            r.shared_total,
            nonshared_bufmem,
        ),
        None => format!(
            "{}x{}x{} is the only candidate ({}-word pool; non-shared baseline {})",
            best.heuristic,
            best.loop_opt,
            best.allocation_order,
            best.shared_total,
            nonshared_bufmem,
        ),
    };

    let analysis = Analysis {
        repetitions: q,
        winner: best.heuristic,
        nonshared_bufmem,
        schedule: best.schedule.clone(),
        wig: best.wig.clone(),
        allocation: best.allocation.clone(),
        mco: best.mco,
        mcp: best.mcp,
    };

    let report = EngineReport {
        graph: graph.name().to_string(),
        actors: graph.actor_count(),
        edges: graph.edge_count(),
        parallel: options.parallel,
        threads: if options.parallel {
            rayon::current_num_threads()
        } else {
            1
        },
        dp_mode: options.dp_mode,
        repetitions_ns,
        nonshared_bufmem,
        orders: order_timings,
        candidates: candidates
            .iter()
            .enumerate()
            .map(|(i, c)| CandidateReport {
                heuristic: c.heuristic,
                loop_opt: c.loop_opt,
                allocation_order: c.allocation_order,
                shared_total: c.shared_total,
                mco: c.mco,
                mcp: c.mcp,
                conflicts: c.conflicts,
                memoized_schedule: c.memoized_schedule,
                timings: c.timings,
                counters: c.counters.clone(),
                winner: i == winner,
            })
            .collect(),
        winner,
        rationale,
        total_ns: elapsed_ns(t_run),
        counters: {
            // counter_values() is BTreeMap-backed and therefore sorted
            // today; the sentinel's exact-match diff depends on that, so
            // enforce it here rather than trusting the backing store.
            let mut counters = sdf_trace::counter_values();
            counters.sort();
            counters
        },
    };

    Ok(Synthesis {
        analysis,
        candidates,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdf_apps::registry::by_name;
    use sdf_apps::satrec::satellite_receiver;

    fn fig2() -> SdfGraph {
        let mut g = SdfGraph::new("fig2");
        let a = g.add_actor("A");
        let b = g.add_actor("B");
        let c = g.add_actor("C");
        g.add_edge(a, b, 20, 10).unwrap();
        g.add_edge(b, c, 20, 10).unwrap();
        g
    }

    #[test]
    fn default_builder_matches_classic_pipeline() {
        for graph in [fig2(), satellite_receiver(), by_name("qmf23_2d").unwrap()] {
            let classic = Analysis::run(&graph).unwrap();
            let engine = AnalysisBuilder::default().run(&graph).unwrap();
            assert_eq!(engine.winner, classic.winner, "{}", graph.name());
            assert_eq!(engine.nonshared_bufmem, classic.nonshared_bufmem);
            assert_eq!(engine.shared_total(), classic.shared_total());
            assert_eq!(engine.allocation, classic.allocation);
            assert_eq!(engine.mco, classic.mco);
            assert_eq!(engine.mcp, classic.mcp);
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let graph = satellite_receiver();
        let serial = AnalysisBuilder::new()
            .loop_opts(LoopVariant::ALL)
            .parallel(false)
            .run_full(&graph)
            .unwrap();
        let parallel = AnalysisBuilder::new()
            .loop_opts(LoopVariant::ALL)
            .parallel(true)
            .run_full(&graph)
            .unwrap();
        assert_eq!(serial.candidates.len(), parallel.candidates.len());
        for (s, p) in serial.candidates.iter().zip(&parallel.candidates) {
            assert_eq!(s.shared_total, p.shared_total);
            assert_eq!(s.allocation, p.allocation);
        }
        assert_eq!(serial.report.winner, parallel.report.winner);
    }

    #[test]
    fn chain_precise_joins_lattice_once_on_chains() {
        let graph = fig2(); // a chain
        let synthesis = AnalysisBuilder::new()
            .loop_opts(LoopVariant::ALL)
            .run_full(&graph)
            .unwrap();
        let chain_rows = synthesis
            .candidates
            .iter()
            .filter(|c| c.loop_opt == LoopVariant::ChainPrecise)
            .count();
        // One chain-precise cell total (order-insensitive), fanned out
        // over the two allocation orders.
        assert_eq!(chain_rows, 2);
        // DPPO candidates reuse the memoized baseline tree.
        assert!(synthesis
            .candidates
            .iter()
            .filter(|c| c.loop_opt == LoopVariant::Dppo)
            .all(|c| c.memoized_schedule));
    }

    #[test]
    fn custom_order_is_swept() {
        let graph = fig2();
        let q = RepetitionsVector::compute(&graph).unwrap();
        let order = apgan(&graph, &q).unwrap();
        let synthesis = AnalysisBuilder::new()
            .heuristics([])
            .custom_order(order)
            .run_full(&graph)
            .unwrap();
        assert!(synthesis
            .candidates
            .iter()
            .all(|c| c.heuristic == Heuristic::Custom));
        assert_eq!(synthesis.analysis.winner, Heuristic::Custom);
    }

    #[test]
    fn custom_without_order_is_rejected() {
        let graph = fig2();
        let err = AnalysisBuilder::new()
            .heuristics([Heuristic::Custom])
            .run(&graph)
            .unwrap_err();
        assert!(err.to_string().contains("custom_order"), "{err}");
    }

    #[test]
    fn empty_lattice_is_rejected() {
        let graph = fig2();
        assert!(AnalysisBuilder::new().heuristics([]).run(&graph).is_err());
        assert!(AnalysisBuilder::new().loop_opts([]).run(&graph).is_err());
        assert!(AnalysisBuilder::new().allocators([]).run(&graph).is_err());
    }

    #[test]
    fn report_is_consistent_and_serialises() {
        let graph = satellite_receiver();
        let synthesis = AnalysisBuilder::new()
            .loop_opts(LoopVariant::ALL)
            .run_full(&graph)
            .unwrap();
        let report = &synthesis.report;
        assert_eq!(report.candidates.len(), synthesis.candidates.len());
        assert_eq!(report.candidates.iter().filter(|c| c.winner).count(), 1);
        assert_eq!(
            report.candidates[report.winner].shared_total,
            synthesis.analysis.shared_total()
        );
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"graph\":\"satrec\"",
            "\"candidates\":[",
            "\"timings\":{",
            "\"rationale\":",
            "\"winner\":true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Balanced braces and no raw control characters.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let text = report.to_string();
        assert!(text.contains("rationale:"), "{text}");
    }

    #[test]
    fn heuristic_string_compat() {
        assert_eq!(Heuristic::Apgan, "apgan");
        assert_eq!(&*Heuristic::Rpmc, "rpmc");
        assert_eq!(Heuristic::Custom.to_string(), "custom");
        assert_eq!("apgan".parse::<Heuristic>().unwrap(), Heuristic::Apgan);
        assert!("other".parse::<Heuristic>().is_err());
    }
}
