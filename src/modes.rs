//! Multi-mode synthesis: one shared pool across every mode of a
//! [`ModeGraph`].
//!
//! [`synthesize_modes`] runs the existing candidate-lattice engine on
//! every mode independently (each mode gets the full heuristic ×
//! loop-DP × allocation-order sweep), merges the per-mode intersection
//! graphs with [`ModeConflictGraph`] and first-fits **one** pool for
//! the whole scenario set:
//!
//! * persistent buffers get a single offset, identical in every mode;
//! * mode-local buffers of different modes may overlap freely (only
//!   one mode runs at a time);
//! * the merged pool is gated against `max(per-mode pools) +
//!   persistent words` — sharing across modes must never cost more
//!   than the worst mode plus the carried state.
//!
//! The result lowers into a [`ModeExecutablePlan`] and is proven by the
//! transition oracle ([`sdf_codegen::execute_mode_plan`]): fire mode A,
//! switch, fire mode B, conserving persistent tokens and live-buffer
//! disjointness across every transition.
//!
//! # Examples
//!
//! ```
//! use sdfmem::modes::synthesize_modes;
//! use sdfmem::core::mode::parse_mode_graph;
//!
//! let text = "\
//! modegraph toy
//! persistent x y
//! mode one
//! edge x y 1 1 delay 1
//! edge a b 2 1
//! mode two
//! edge x y 1 1 delay 1
//! edge y c 1 3
//! ";
//! let mg = parse_mode_graph(text).unwrap();
//! let synth = synthesize_modes(&mg).unwrap();
//! assert!(synth.gate_ok);
//! assert!(synth.merged_pool_words <= synth.sum_pool_words);
//! assert!(synth.exec.is_ok());
//! ```

use sdf_alloc::{allocate, Allocation, AllocationOrder, PlacementPolicy};
use sdf_codegen::{
    execute_mode_plan, ExecutablePlan, ModeExecReport, ModeExecutablePlan, ModePlanEntry,
    PersistentBinding,
};
use sdf_core::error::SdfError;
use sdf_core::mode::ModeGraph;
use sdf_lifetime::modes::ModeConflictGraph;
use sdf_lifetime::wig::IntersectionGraph;

use crate::engine::AnalysisBuilder;

/// One mode's synthesis, summarised for reports.
#[derive(Clone, Debug)]
pub struct ModeSummary {
    /// Mode name.
    pub name: String,
    /// Actors in the mode's graph.
    pub actors: usize,
    /// Edges in the mode's graph.
    pub edges: usize,
    /// The pool the mode needs *on its own* (the engine winner's
    /// shared total) — the per-mode baseline the merge is judged by.
    pub standalone_pool_words: u64,
    /// The mode's non-shared bufmem (per-edge baseline).
    pub nonshared_bufmem: u64,
    /// Firings in one period of the mode.
    pub firings: u64,
}

/// Everything multi-mode synthesis produces.
#[derive(Clone, Debug)]
pub struct ModeSynthesis {
    /// The lowered multi-mode plan (shared pool, per-mode plans,
    /// persistent table).
    pub plan: ModeExecutablePlan,
    /// The merged cross-mode conflict graph the pool was packed on.
    pub merged: ModeConflictGraph,
    /// The merged first-fit allocation (offsets index the merged graph).
    pub merged_allocation: Allocation,
    /// Per-mode summaries, in mode order.
    pub summaries: Vec<ModeSummary>,
    /// The merged shared pool, words.
    pub merged_pool_words: u64,
    /// Sum of the standalone per-mode pools — what separate pools per
    /// mode would cost.
    pub sum_pool_words: u64,
    /// Max of the standalone per-mode pools.
    pub max_pool_words: u64,
    /// Total words reserved for persistent buffers.
    pub persistent_words: u64,
    /// The gate: `max_pool_words + persistent_words`.
    pub gate_bound: u64,
    /// Whether `merged_pool_words ≤ gate_bound`.
    pub gate_ok: bool,
    /// The transition oracle's verdict over the default round-robin
    /// sequence (every switch crossed, mode 0 re-entered).
    pub exec: Result<ModeExecReport, String>,
}

impl ModeSynthesis {
    /// The headline saving of one merged pool versus one pool per mode:
    /// `(sum − merged) / sum × 100`.
    pub fn savings_percent(&self) -> f64 {
        if self.sum_pool_words == 0 {
            return 0.0;
        }
        (self.sum_pool_words as f64 - self.merged_pool_words as f64) / self.sum_pool_words as f64
            * 100.0
    }
}

/// Synthesises `mg` into one shared pool across all modes (see the
/// module docs for the guarantees).
///
/// # Errors
///
/// Propagates [`ModeGraph::validate`] violations and any per-mode
/// engine or lowering failure ([`SdfError`]).
pub fn synthesize_modes(mg: &ModeGraph) -> Result<ModeSynthesis, SdfError> {
    let _span = sdf_trace::span!("modes.synthesize", modes = mg.modes().len());
    mg.validate()?;
    let builder = AnalysisBuilder::new();

    // Per-mode synthesis on the existing candidate lattice.
    let mut analyses = Vec::with_capacity(mg.modes().len());
    let mut summaries = Vec::with_capacity(mg.modes().len());
    for mode in mg.modes() {
        let analysis = builder.run(&mode.graph)?;
        summaries.push(ModeSummary {
            name: mode.name.clone(),
            actors: mode.graph.actor_count(),
            edges: mode.graph.edge_count(),
            standalone_pool_words: analysis.shared_total(),
            nonshared_bufmem: analysis.nonshared_bufmem,
            firings: analysis.repetitions.total_firings(),
        });
        analyses.push(analysis);
    }

    // Resolve every persistent edge to its per-mode WIG buffer index.
    let wigs: Vec<&IntersectionGraph> = analyses.iter().map(|a| &a.wig).collect();
    let mut persistent_rows = Vec::with_capacity(mg.persistent().len());
    for p in 0..mg.persistent().len() {
        let mut row = Vec::with_capacity(mg.modes().len());
        for (m, analysis) in analyses.iter().enumerate() {
            let edge = mg.resolve_persistent(m, p)?;
            row.push(analysis.wig.buffer_of_edge(edge)?);
        }
        persistent_rows.push(row);
    }

    // Merge and pack one pool.
    let merged = ModeConflictGraph::build(&wigs, &persistent_rows);
    let merged_allocation = allocate(
        &merged,
        AllocationOrder::DurationDescending,
        PlacementPolicy::FirstFit,
    );
    let merged_pool_words = merged_allocation.total();
    let offsets: Vec<u64> = (0..sdf_lifetime::wig::ConflictGraph::len(&merged))
        .map(|i| merged_allocation.offset(i))
        .collect();
    let per_mode_offsets = merged.project_offsets(&offsets);

    // Lower each mode's winning schedule against the merged offsets.
    let mut entries = Vec::with_capacity(mg.modes().len());
    for (m, mode) in mg.modes().iter().enumerate() {
        let a = &analyses[m];
        let alloc = Allocation::from_parts(per_mode_offsets[m].clone(), merged_pool_words);
        let plan =
            ExecutablePlan::lower_shared(&mode.graph, &a.repetitions, &a.schedule, &a.wig, &alloc)?;
        entries.push(ModePlanEntry {
            name: mode.name.clone(),
            plan,
        });
    }

    // The persistent table: offsets are per-node, identical everywhere.
    let mut persistent = Vec::with_capacity(mg.persistent().len());
    for (p, pe) in mg.persistent().iter().enumerate() {
        let node = merged.node_of(0, persistent_rows[p][0]);
        let mut bindings = Vec::with_capacity(mg.modes().len());
        let mut delay = 0;
        for (m, entry) in entries.iter().enumerate() {
            let edge = mg.resolve_persistent(m, p)?;
            let ib = entry
                .plan
                .bindings
                .iter()
                .position(|b| b.edge == edge.index())
                .ok_or_else(|| {
                    SdfError::InvalidSchedule(format!(
                        "persistent edge {} -> {} has no binding in mode {:?}",
                        pe.src, pe.snk, entry.name
                    ))
                })?;
            delay = entry.plan.bindings[ib].delay;
            bindings.push(ib);
        }
        persistent.push(PersistentBinding {
            src: pe.src.clone(),
            snk: pe.snk.clone(),
            offset: offsets[node],
            size: sdf_lifetime::wig::ConflictGraph::size(&merged, node),
            delay,
            bindings,
        });
    }

    let plan = ModeExecutablePlan::assemble(mg.name(), entries, persistent)
        .map_err(|e| SdfError::InvalidSchedule(e.to_string()))?;

    // Gate and oracle.
    let sum_pool_words = summaries.iter().map(|s| s.standalone_pool_words).sum();
    let max_pool_words = summaries
        .iter()
        .map(|s| s.standalone_pool_words)
        .max()
        .unwrap_or(0);
    let persistent_words = merged.persistent_words();
    let gate_bound = max_pool_words + persistent_words;
    let gate_ok = merged_pool_words <= gate_bound;
    let exec = execute_mode_plan(&plan, &plan.default_sequence()).map_err(|e| e.to_string());

    sdf_trace::counter_add("modes.merged_pool_words", merged_pool_words);
    sdf_trace::counter_add("modes.sum_pool_words", sum_pool_words);

    Ok(ModeSynthesis {
        plan,
        merged,
        merged_allocation,
        summaries,
        merged_pool_words,
        sum_pool_words,
        max_pool_words,
        persistent_words,
        gate_bound,
        gate_ok,
        exec,
    })
}
