//! Incremental re-synthesis for edit-heavy traffic.
//!
//! Interactive callers — a designer nudging one rate, a daemon serving a
//! stream of small graph edits — re-run the full engine today and pay
//! the quadratic chain-DP sweep every time. This module adds the delta
//! path: an [`IncrementalSession`] holds the previous synthesis state
//! and a cross-run [`MemoStore`], an [`EditScript`] describes a small
//! change against the current graph, and [`IncrementalSession::apply_edits`]
//! re-synthesises by recomputing only what the edit invalidated:
//!
//! * **chain-DP cells** are content-addressed in the memo store
//!   ([`sdf_sched::memo`]) — subchains untouched by the edit resolve to
//!   stored `(value, split)` pairs without re-running the DP;
//! * **lifetime envelopes** of clean edges are reused verbatim
//!   ([`IntersectionGraph::build_spliced`]) when the schedule tree and
//!   repetitions vector are unchanged;
//! * **WIG adjacency** between clean buffer pairs is copied; only pairs
//!   touching a dirty buffer are re-tested;
//! * **first-fit placements** replay the previous allocation's clean
//!   sequence prefix ([`allocate_incremental`]).
//!
//! Every incremental result is bit-for-bit identical to a cold run on
//! the edited graph — asserted, not assumed: allocations are always
//! re-validated, and the test suite (plus the CI smoke job) compares
//! schedules, offsets and the full `ExecutablePlan` JSON byte-wise
//! against cold reference runs at every step.
//!
//! # Examples
//!
//! ```
//! use sdfmem::engine::SynthesisOptions;
//! use sdfmem::incremental::{EditScript, IncrementalSession};
//! use sdfmem::apps::satrec::satellite_receiver;
//!
//! # fn main() -> Result<(), sdfmem::core::SdfError> {
//! let mut session = IncrementalSession::new(SynthesisOptions::default());
//! let cold = session.synthesize(&satellite_receiver())?;
//! let script = EditScript::parse("set-delay A B 3").unwrap();
//! let warm = session.apply_edits(&script)?;
//! assert!(!warm.stats.cold);
//! assert!(warm.stats.memo_hits > 0); // shared subchains resolved from the store
//! assert_eq!(warm.stats.dirty_edges, 1);
//! # let _ = cold;
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use sdf_alloc::{allocate, allocate_incremental, validate_allocation, Allocation, PlacementPolicy};
use sdf_codegen::ExecutablePlan;
use sdf_core::error::SdfError;
use sdf_core::graph::{ActorId, SdfGraph};
use sdf_core::repetitions::RepetitionsVector;
use sdf_core::schedule::SasTree;
use sdf_lifetime::clique::{mcw_optimistic, mcw_pessimistic};
use sdf_lifetime::tree::ScheduleTree;
use sdf_lifetime::wig::IntersectionGraph;
use sdf_sched::variant::{schedule_variant_from_tables_memo, LoopVariant};
use sdf_sched::{apgan, dppo_from_tables_memo, rpmc, ChainTables, MemoStats, MemoStore};

use crate::engine::{Heuristic, SynthesisOptions};
use crate::pipeline::Analysis;

/// One edit against the current graph. Edges are addressed by endpoint
/// actor names plus an `ordinal` — the index among parallel edges with
/// the same `(src, snk)` pair, in edge-id order (0 for the first and
/// usually only one).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditOp {
    /// Replace the production/consumption rates of an existing edge.
    SetRate {
        /// Source actor name.
        src: String,
        /// Sink actor name.
        snk: String,
        /// Index among parallel `(src, snk)` edges.
        ordinal: usize,
        /// New tokens produced per source firing.
        prod: u64,
        /// New tokens consumed per sink firing.
        cons: u64,
    },
    /// Replace the initial-token count of an existing edge.
    SetDelay {
        /// Source actor name.
        src: String,
        /// Sink actor name.
        snk: String,
        /// Index among parallel `(src, snk)` edges.
        ordinal: usize,
        /// New delay (initial tokens).
        delay: u64,
    },
    /// Append a new edge (actors unseen so far are created).
    AddEdge {
        /// Source actor name.
        src: String,
        /// Sink actor name.
        snk: String,
        /// Tokens produced per source firing.
        prod: u64,
        /// Tokens consumed per sink firing.
        cons: u64,
        /// Initial tokens.
        delay: u64,
    },
    /// Remove an existing edge (its actors remain).
    RemoveEdge {
        /// Source actor name.
        src: String,
        /// Sink actor name.
        snk: String,
        /// Index among parallel `(src, snk)` edges.
        ordinal: usize,
    },
}

impl EditOp {
    /// Parses one edit line. Formats (the ordinal suffix defaults to 0):
    ///
    /// ```text
    /// set-rate SRC SNK PROD CONS [@ORD]
    /// set-delay SRC SNK DELAY [@ORD]
    /// add-edge SRC SNK PROD CONS [delay D]
    /// remove-edge SRC SNK [@ORD]
    /// ```
    ///
    /// # Errors
    ///
    /// A human-readable message naming the malformed token.
    pub fn parse(line: &str) -> Result<EditOp, String> {
        let words: Vec<&str> = line.split_whitespace().collect();
        let err = |msg: String| format!("{msg}: {line:?}");
        let int = |w: &str, what: &str| -> Result<u64, String> {
            w.parse().map_err(|_| err(format!("bad {what} `{w}`")))
        };
        let ordinal = |w: Option<&&str>| -> Result<usize, String> {
            match w {
                None => Ok(0),
                Some(w) => w
                    .strip_prefix('@')
                    .and_then(|o| o.parse().ok())
                    .ok_or_else(|| err(format!("expected `@ORD`, got `{w}`"))),
            }
        };
        match words.as_slice() {
            ["set-rate", src, snk, prod, cons, rest @ ..] if rest.len() <= 1 => {
                Ok(EditOp::SetRate {
                    src: src.to_string(),
                    snk: snk.to_string(),
                    ordinal: ordinal(rest.first())?,
                    prod: int(prod, "production rate")?,
                    cons: int(cons, "consumption rate")?,
                })
            }
            ["set-delay", src, snk, delay, rest @ ..] if rest.len() <= 1 => Ok(EditOp::SetDelay {
                src: src.to_string(),
                snk: snk.to_string(),
                ordinal: ordinal(rest.first())?,
                delay: int(delay, "delay")?,
            }),
            ["add-edge", src, snk, prod, cons] => Ok(EditOp::AddEdge {
                src: src.to_string(),
                snk: snk.to_string(),
                prod: int(prod, "production rate")?,
                cons: int(cons, "consumption rate")?,
                delay: 0,
            }),
            ["add-edge", src, snk, prod, cons, "delay", delay] => Ok(EditOp::AddEdge {
                src: src.to_string(),
                snk: snk.to_string(),
                prod: int(prod, "production rate")?,
                cons: int(cons, "consumption rate")?,
                delay: int(delay, "delay")?,
            }),
            ["remove-edge", src, snk, rest @ ..] if rest.len() <= 1 => Ok(EditOp::RemoveEdge {
                src: src.to_string(),
                snk: snk.to_string(),
                ordinal: ordinal(rest.first())?,
            }),
            [] => Err(err("empty edit".to_string())),
            _ => Err(err(
                "expected set-rate/set-delay/add-edge/remove-edge with their operands".to_string(),
            )),
        }
    }
}

impl fmt::Display for EditOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn ord(f: &mut fmt::Formatter<'_>, o: usize) -> fmt::Result {
            if o > 0 {
                write!(f, " @{o}")?;
            }
            Ok(())
        }
        match self {
            EditOp::SetRate {
                src,
                snk,
                ordinal,
                prod,
                cons,
            } => {
                write!(f, "set-rate {src} {snk} {prod} {cons}")?;
                ord(f, *ordinal)
            }
            EditOp::SetDelay {
                src,
                snk,
                ordinal,
                delay,
            } => {
                write!(f, "set-delay {src} {snk} {delay}")?;
                ord(f, *ordinal)
            }
            EditOp::AddEdge {
                src,
                snk,
                prod,
                cons,
                delay,
            } => {
                write!(f, "add-edge {src} {snk} {prod} {cons}")?;
                if *delay > 0 {
                    write!(f, " delay {delay}")?;
                }
                Ok(())
            }
            EditOp::RemoveEdge { src, snk, ordinal } => {
                write!(f, "remove-edge {src} {snk}")?;
                ord(f, *ordinal)
            }
        }
    }
}

/// An ordered list of [`EditOp`]s applied left to right.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EditScript {
    /// The edits, in application order.
    pub ops: Vec<EditOp>,
}

impl EditScript {
    /// Parses one edit per non-empty line; `#` starts a comment.
    ///
    /// # Errors
    ///
    /// The first malformed line's [`EditOp::parse`] message, prefixed
    /// with its 1-based line number.
    pub fn parse(text: &str) -> Result<EditScript, String> {
        let mut ops = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            ops.push(EditOp::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
        }
        Ok(EditScript { ops })
    }

    /// Serialises back to the line format [`EditScript::parse`] accepts.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for op in &self.ops {
            out.push_str(&op.to_string());
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for EditScript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

/// Applies `script` to `base`, returning the edited graph.
///
/// The edited graph is rebuilt deterministically: base actors keep their
/// ids and order, actors introduced by `add-edge` are appended in first
/// use order, and edges keep base relative order with removed edges
/// dropped and added edges appended. Two sessions applying the same
/// script to the same base therefore produce identical graphs (and
/// identical edge ids), which is what makes delta results comparable
/// byte for byte against a cold run on the same text.
///
/// # Errors
///
/// [`SdfError::InvalidSchedule`] (the crate's generic carrier) when an
/// edit names a nonexistent edge or an out-of-range ordinal;
/// [`SdfError::ZeroRate`] when a rate edit writes a zero rate.
pub fn apply_edits(base: &SdfGraph, script: &EditScript) -> Result<SdfGraph, SdfError> {
    #[derive(Clone)]
    struct WEdge {
        src: String,
        snk: String,
        prod: u64,
        cons: u64,
        delay: u64,
    }
    let mut actors: Vec<String> = base
        .actors()
        .map(|a| base.actor_name(a).to_string())
        .collect();
    let mut edges: Vec<WEdge> = base
        .edges()
        .map(|(_, e)| WEdge {
            src: base.actor_name(e.src).to_string(),
            snk: base.actor_name(e.snk).to_string(),
            prod: e.prod,
            cons: e.cons,
            delay: e.delay,
        })
        .collect();
    for op in &script.ops {
        let locate = |edges: &[WEdge], src: &str, snk: &str, ordinal: usize| {
            edges
                .iter()
                .enumerate()
                .filter(|(_, e)| e.src == src && e.snk == snk)
                .map(|(i, _)| i)
                .nth(ordinal)
                .ok_or_else(|| {
                    SdfError::InvalidSchedule(format!(
                        "edit `{op}` addresses a nonexistent edge {src} -> {snk} (ordinal {ordinal})"
                    ))
                })
        };
        match op {
            EditOp::SetRate {
                src,
                snk,
                ordinal,
                prod,
                cons,
            } => {
                let i = locate(&edges, src, snk, *ordinal)?;
                edges[i].prod = *prod;
                edges[i].cons = *cons;
            }
            EditOp::SetDelay {
                src,
                snk,
                ordinal,
                delay,
            } => {
                let i = locate(&edges, src, snk, *ordinal)?;
                edges[i].delay = *delay;
            }
            EditOp::AddEdge {
                src,
                snk,
                prod,
                cons,
                delay,
            } => {
                for name in [src, snk] {
                    if !actors.iter().any(|a| a == name) {
                        actors.push(name.clone());
                    }
                }
                edges.push(WEdge {
                    src: src.clone(),
                    snk: snk.clone(),
                    prod: *prod,
                    cons: *cons,
                    delay: *delay,
                });
            }
            EditOp::RemoveEdge { src, snk, ordinal } => {
                let i = locate(&edges, src, snk, *ordinal)?;
                edges.remove(i);
            }
        }
    }
    let mut g = SdfGraph::new(base.name());
    for name in &actors {
        g.add_actor(name);
    }
    for e in &edges {
        let s = g
            .actor_by_name(&e.src)
            .expect("working edges only reference known actors");
        let t = g
            .actor_by_name(&e.snk)
            .expect("working edges only reference known actors");
        g.add_edge_with_delay(s, t, e.prod, e.cons, e.delay)?;
    }
    Ok(g)
}

/// Per-edge dirtiness of `next` relative to `prev`: an edge is clean iff
/// the same index exists in both graphs with an identical record and
/// identically named endpoints. Insertions/removals shift later ids, so
/// everything from the first structural divergence is conservatively
/// dirty.
pub fn dirty_edges(prev: &SdfGraph, next: &SdfGraph) -> Vec<bool> {
    next.edges()
        .map(|(id, e)| {
            if id.index() >= prev.edge_count() {
                return true;
            }
            let p = prev.edge(id);
            p != e
                || prev.actor_name(p.src) != next.actor_name(e.src)
                || prev.actor_name(p.snk) != next.actor_name(e.snk)
        })
        .collect()
}

/// A delay-insensitive structural fingerprint (actors, topology, rates).
/// APGAN clusters on repetitions counts and rate products only — it
/// never reads edge delays — so its order can be reused across edits
/// that change delays alone. The reuse is additionally asserted by a
/// test replaying random delay edits, not just claimed here.
fn rate_topology_fingerprint(graph: &SdfGraph) -> u64 {
    // FNV-1a over the delay-free description.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&(graph.actor_count() as u64).to_le_bytes());
    for a in graph.actors() {
        eat(graph.actor_name(a).as_bytes());
        eat(&[0xff]);
    }
    for (_, e) in graph.edges() {
        eat(&(e.src.index() as u64).to_le_bytes());
        eat(&(e.snk.index() as u64).to_le_bytes());
        eat(&e.prod.to_le_bytes());
        eat(&e.cons.to_le_bytes());
    }
    h
}

/// Reuse accounting of one incremental run.
#[derive(Clone, Debug, Default)]
pub struct DeltaStats {
    /// True when no previous state existed (full synthesis).
    pub cold: bool,
    /// Edges invalidated by the edit, out of `total_edges`.
    pub dirty_edges: u64,
    /// Edge count of the (edited) graph.
    pub total_edges: u64,
    /// Whether the APGAN order was reused from the previous run.
    pub apgan_order_reused: bool,
    /// Lattice cells whose lifetime/WIG/alloc stages spliced against the
    /// previous run's state.
    pub cells_spliced: u64,
    /// Lattice cells evaluated from scratch.
    pub cells_recomputed: u64,
    /// Buffer lifetimes reused verbatim across all spliced cells.
    pub lifetimes_reused: u64,
    /// Buffer lifetimes recomputed.
    pub lifetimes_recomputed: u64,
    /// Clean WIG adjacency pairs copied.
    pub wig_pairs_reused: u64,
    /// WIG pairs precisely re-tested.
    pub wig_pairs_retested: u64,
    /// First-fit placements replayed from previous allocations.
    pub placements_reused: u64,
    /// First-fit placements recomputed.
    pub placements_recomputed: u64,
    /// Memo-store hits during this run.
    pub memo_hits: u64,
    /// Memo-store misses during this run.
    pub memo_misses: u64,
    /// Store-wide occupancy and lifetime counters after the run.
    pub memo: MemoStats,
    /// Wall time of the run.
    pub elapsed_ns: u64,
}

/// The outcome of one incremental (or seeding) synthesis.
#[derive(Clone, Debug)]
pub struct IncrementalResult {
    /// The winning analysis — bit-identical to a cold
    /// [`crate::engine::AnalysisBuilder::run`] with the same options on
    /// the same graph.
    pub analysis: Analysis,
    /// Reuse accounting for this run.
    pub stats: DeltaStats,
}

impl IncrementalResult {
    /// Lowers the winning candidate to the [`ExecutablePlan`] IR for
    /// `graph` (the session's current graph).
    ///
    /// # Errors
    ///
    /// Propagates lowering errors (cannot occur for a result produced on
    /// the same graph).
    pub fn plan(&self, graph: &SdfGraph) -> Result<ExecutablePlan, SdfError> {
        self.analysis.plan(graph)
    }
}

/// Everything one evaluated lattice cell leaves behind for the next
/// edit to splice against.
struct PrevCell {
    heuristic: Heuristic,
    loop_opt: LoopVariant,
    schedule: SasTree,
    wig: IntersectionGraph,
    /// One allocation per configured allocation order, in axis order.
    allocations: Vec<Allocation>,
    mco: u64,
    mcp: u64,
}

struct SessionState {
    graph: SdfGraph,
    q: RepetitionsVector,
    apgan_fp: u64,
    apgan_order: Option<Vec<ActorId>>,
    cells: Vec<PrevCell>,
}

/// A stateful synthesis session over an evolving graph.
///
/// The session owns (or shares) a [`MemoStore`] and the previous run's
/// per-cell state; [`IncrementalSession::synthesize`] seeds it from a
/// full graph and [`IncrementalSession::apply_edits`] advances it by an
/// [`EditScript`]. The `parallel` option is ignored — the incremental
/// walk is serial (warm stages are too cheap to amortise threads).
pub struct IncrementalSession {
    options: SynthesisOptions,
    memo: Arc<MemoStore>,
    state: Option<SessionState>,
}

impl IncrementalSession {
    /// A fresh session with its own [`MemoStore`] (default capacity).
    pub fn new(options: SynthesisOptions) -> Self {
        Self::with_store(options, Arc::new(MemoStore::new()))
    }

    /// A session sharing `store` with other sessions — the daemon keeps
    /// one process-wide store so concurrent edit streams cross-seed each
    /// other's subchains.
    pub fn with_store(mut options: SynthesisOptions, store: Arc<MemoStore>) -> Self {
        // The walk wires the store through explicitly; a stale handle on
        // the options would shadow it.
        options.memo = None;
        IncrementalSession {
            options,
            memo: store,
            state: None,
        }
    }

    /// The session's memo store.
    pub fn store(&self) -> &Arc<MemoStore> {
        &self.memo
    }

    /// The current graph, if the session has been seeded.
    pub fn graph(&self) -> Option<&SdfGraph> {
        self.state.as_ref().map(|s| &s.graph)
    }

    /// Full synthesis of `graph`, seeding (or re-seeding) the session.
    /// The memo store persists across seeds, so re-synthesising a
    /// related graph is already warm.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`crate::engine::AnalysisBuilder::run`].
    pub fn synthesize(&mut self, graph: &SdfGraph) -> Result<IncrementalResult, SdfError> {
        let prev = self.state.take();
        let result = self.walk(graph.clone(), None);
        if result.is_err() {
            self.state = prev;
        }
        result
    }

    /// Applies `script` to the current graph and re-synthesises along
    /// the delta path. On error the session keeps its previous graph and
    /// state, so a bad edit does not wedge the stream.
    ///
    /// # Errors
    ///
    /// Fails when the session has no current graph, when the script
    /// addresses nonexistent edges, or with any engine error on the
    /// edited graph.
    pub fn apply_edits(&mut self, script: &EditScript) -> Result<IncrementalResult, SdfError> {
        let state = self.state.take().ok_or_else(|| {
            SdfError::InvalidSchedule(
                "incremental session has no base graph; synthesize one first".to_string(),
            )
        })?;
        let next = match apply_edits(&state.graph, script) {
            Ok(g) => g,
            Err(e) => {
                self.state = Some(state);
                return Err(e);
            }
        };
        let result = self.walk(next, Some(&state));
        if result.is_err() {
            self.state = Some(state);
        }
        result
    }

    /// The serial candidate-lattice walk with delta splicing. Mirrors
    /// `engine::run_engine` stage for stage — same order construction,
    /// same cell assembly, same flattening, same winner rule — so its
    /// winner is the engine's winner; bit-identity is enforced by the
    /// test suite and the CI smoke job rather than assumed.
    fn walk(
        &mut self,
        graph: SdfGraph,
        prev: Option<&SessionState>,
    ) -> Result<IncrementalResult, SdfError> {
        let t_run = Instant::now();
        let options = &self.options;
        if options.heuristics.is_empty()
            || options.loop_opts.is_empty()
            || options.allocation_orders.is_empty()
        {
            return Err(SdfError::InvalidSchedule(
                "empty candidate lattice: every SynthesisOptions axis needs at least one entry"
                    .to_string(),
            ));
        }
        let mut stats = DeltaStats {
            cold: prev.is_none(),
            ..DeltaStats::default()
        };
        let memo_before = self.memo.stats();
        let q = RepetitionsVector::compute(&graph)?;
        let dirty: Option<Vec<bool>> = prev.map(|p| dirty_edges(&p.graph, &graph));
        stats.total_edges = graph.edge_count() as u64;
        stats.dirty_edges = dirty
            .as_ref()
            .map(|d| d.iter().filter(|&&b| b).count() as u64)
            .unwrap_or(stats.total_edges);

        // Stage 1: lexical orders. RPMC reads delays and is cheap, so it
        // always reruns. APGAN is delay-blind; a delay-only edit reuses
        // the previous order.
        let apgan_fp = rate_topology_fingerprint(&graph);
        let mut apgan_order: Option<Vec<ActorId>> = None;
        let mut orders: Vec<(Heuristic, Vec<ActorId>)> = Vec::new();
        for &heuristic in &options.heuristics {
            if orders.iter().any(|(h, _)| *h == heuristic) {
                continue;
            }
            let order = match heuristic {
                Heuristic::Rpmc => rpmc(&graph, &q)?,
                Heuristic::Apgan => {
                    let order = match prev {
                        Some(p) if p.apgan_fp == apgan_fp && p.apgan_order.is_some() => {
                            stats.apgan_order_reused = true;
                            p.apgan_order.clone().expect("checked is_some")
                        }
                        _ => apgan(&graph, &q)?,
                    };
                    apgan_order = Some(order.clone());
                    order
                }
                Heuristic::Custom => options.custom_order.clone().ok_or_else(|| {
                    SdfError::InvalidSchedule(
                        "Heuristic::Custom selected without AnalysisBuilder::custom_order"
                            .to_string(),
                    )
                })?,
            };
            orders.push((heuristic, order));
        }

        // Stage 2: hashed chain tables plus the memo-backed non-shared
        // DPPO baseline, one build per distinct order.
        let mut tables: HashMap<Vec<ActorId>, Arc<ChainTables>> = HashMap::new();
        let mut baselines: HashMap<Vec<ActorId>, sdf_sched::DppoResult> = HashMap::new();
        let mut nonshared_bufmem = u64::MAX;
        for (_, order) in &orders {
            if !baselines.contains_key(order) {
                let ct = Arc::new(ChainTables::build_hashed(&graph, &q, order)?);
                let b = dppo_from_tables_memo(&ct, &q, options.dp_mode, Some(&self.memo));
                tables.insert(order.clone(), ct);
                baselines.insert(order.clone(), b);
            }
            nonshared_bufmem = nonshared_bufmem.min(baselines[order].bufmem);
        }

        // Stage 3: cell assembly, mirroring the engine (chain-precise is
        // order-insensitive and joins once, on the first heuristic).
        struct WalkCell {
            heuristic: Heuristic,
            loop_opt: LoopVariant,
            order: Vec<ActorId>,
        }
        let mut cells: Vec<WalkCell> = Vec::new();
        for (heuristic, order) in &orders {
            for &loop_opt in &options.loop_opts {
                if !loop_opt.applicable_to(&graph) {
                    continue;
                }
                if !loop_opt.order_sensitive() && *heuristic != orders[0].0 {
                    continue;
                }
                cells.push(WalkCell {
                    heuristic: *heuristic,
                    loop_opt,
                    order: order.clone(),
                });
            }
        }
        if cells.is_empty() {
            return Err(SdfError::InvalidSchedule(
                "no applicable candidates: selected loop variants cannot run on this graph"
                    .to_string(),
            ));
        }

        // Stage 4: evaluate each cell serially, splicing lifetime, WIG
        // and allocation work against the matching previous cell whenever
        // its inputs are provably unchanged (same repetitions vector,
        // same schedule tree; per-edge dirtiness drives the splices).
        let q_unchanged = prev.is_some_and(|p| p.q == q);
        let mut new_cells: Vec<PrevCell> = Vec::new();
        // First strict minimum in flat (cell × allocation-order) order ==
        // the engine's min_by_key((shared_total, index)).
        let mut best: Option<(u64, usize, usize)> = None; // (total, cell, alloc idx)
        for cell in &cells {
            let schedule = if cell.loop_opt == LoopVariant::Dppo {
                baselines[&cell.order].tree.clone()
            } else {
                schedule_variant_from_tables_memo(
                    &graph,
                    &q,
                    &tables[&cell.order],
                    cell.loop_opt,
                    options.dp_mode,
                    Some(&self.memo),
                )?
                .tree
            };
            let tree = ScheduleTree::build(&graph, &q, &schedule)?;
            let splice = match (prev, &dirty) {
                (Some(p), Some(d)) if q_unchanged => p
                    .cells
                    .iter()
                    .find(|c| {
                        c.heuristic == cell.heuristic
                            && c.loop_opt == cell.loop_opt
                            && c.schedule == schedule
                    })
                    .map(|pc| (pc, d.as_slice())),
                _ => None,
            };
            let wig = match splice {
                Some((pc, d)) => {
                    stats.cells_spliced += 1;
                    let (wig, ws) = IntersectionGraph::build_spliced(&graph, &q, &tree, &pc.wig, d);
                    stats.lifetimes_reused += ws.reused_buffers;
                    stats.lifetimes_recomputed += ws.recomputed_buffers;
                    stats.wig_pairs_reused += ws.reused_pairs;
                    stats.wig_pairs_retested += ws.retested_pairs;
                    wig
                }
                None => {
                    stats.cells_recomputed += 1;
                    let wig = IntersectionGraph::build(&graph, &q, &tree);
                    stats.lifetimes_recomputed += wig.len() as u64;
                    wig
                }
            };
            let (mco, mcp) = (mcw_optimistic(&wig), mcw_pessimistic(&wig));
            let mut allocations = Vec::with_capacity(options.allocation_orders.len());
            for (k, &allocation_order) in options.allocation_orders.iter().enumerate() {
                let allocation = match splice {
                    Some((pc, d)) if k < pc.allocations.len() => {
                        let (a, asr) = allocate_incremental(
                            &wig,
                            allocation_order,
                            PlacementPolicy::FirstFit,
                            &pc.wig,
                            &pc.allocations[k],
                            d,
                        );
                        stats.placements_reused += asr.reused_placements;
                        stats.placements_recomputed += asr.recomputed_placements;
                        a
                    }
                    _ => {
                        let a = allocate(&wig, allocation_order, PlacementPolicy::FirstFit);
                        stats.placements_recomputed += wig.len() as u64;
                        a
                    }
                };
                // Asserted, not assumed: every spliced allocation is
                // re-validated against the freshly built WIG.
                validate_allocation(&wig, &allocation)?;
                let total = allocation.total();
                if best.is_none_or(|(t, _, _)| total < t) {
                    best = Some((total, new_cells.len(), k));
                }
                allocations.push(allocation);
            }
            new_cells.push(PrevCell {
                heuristic: cell.heuristic,
                loop_opt: cell.loop_opt,
                schedule,
                wig,
                allocations,
                mco,
                mcp,
            });
        }

        // Stage 5: the Table 1 "bold entry" rule — smallest shared pool,
        // ties to the earliest lattice point.
        let (_, win_cell, win_alloc) = best.expect("at least one candidate");
        let winner = &new_cells[win_cell];
        let analysis = Analysis {
            repetitions: q.clone(),
            winner: winner.heuristic,
            nonshared_bufmem,
            schedule: winner.schedule.clone(),
            wig: winner.wig.clone(),
            allocation: winner.allocations[win_alloc].clone(),
            mco: winner.mco,
            mcp: winner.mcp,
        };

        let memo_after = self.memo.stats();
        stats.memo_hits = memo_after.hits - memo_before.hits;
        stats.memo_misses = memo_after.misses - memo_before.misses;
        stats.memo = memo_after;
        stats.elapsed_ns = u64::try_from(t_run.elapsed().as_nanos()).unwrap_or(u64::MAX);
        emit_counters(&stats);

        self.state = Some(SessionState {
            graph,
            q,
            apgan_fp,
            apgan_order,
            cells: new_cells,
        });
        Ok(IncrementalResult { analysis, stats })
    }
}

/// Mirrors the reuse accounting onto the installed trace recorder (a
/// no-op without one; daemon workers surface the same numbers through
/// the store's own atomics instead, outside the cached payload bytes).
fn emit_counters(stats: &DeltaStats) {
    if !sdf_trace::enabled() {
        return;
    }
    sdf_trace::counter_inc(if stats.cold {
        "engine.incremental.cold_runs"
    } else {
        "engine.incremental.delta_runs"
    });
    sdf_trace::counter_add("engine.incremental.dirty_edges", stats.dirty_edges);
    sdf_trace::counter_add(
        "engine.incremental.lifetimes.reused",
        stats.lifetimes_reused,
    );
    sdf_trace::counter_add(
        "engine.incremental.wig.pairs_reused",
        stats.wig_pairs_reused,
    );
    sdf_trace::counter_add(
        "engine.incremental.alloc.placements_reused",
        stats.placements_reused,
    );
}
