//! Capture side of the regression sentinel: runs the engine under a
//! recorder and distils the run into an [`sdf_regress::Profile`].
//!
//! The capture is always **serial** — per-candidate counter attribution
//! and stable lattice ordering need exclusive use of the shared
//! recorder — and repeats the run [`CaptureOptions::repeats`] times so
//! the profile's timings carry a median and a MAD noise band. The work
//! counters must come out identical on every repeat (they are
//! deterministic functions of the graph); a mismatch aborts the capture
//! with the first differing counter named, because a baseline recorded
//! from a nondeterministic run would gate on noise forever after.

use std::sync::Arc;

use sdf_core::graph::SdfGraph;
use sdf_regress::{Outcomes, Profile, TimingStat};
use sdf_sched::variant::LoopVariant;
use sdf_trace::Recorder;

use crate::engine::{AnalysisBuilder, Synthesis};

/// Environment variable holding a perturbation spec (`name=+N`,
/// `name=-N` or `name=N`) that capture front ends apply to the profile
/// via [`Profile::apply_perturbation`]. This is the acceptance test
/// hook: inject a counter change, watch `sdfmem compare` trip the gate.
pub const PERTURB_ENV: &str = "SDF_REGRESS_PERTURB";

/// Configuration of one profile capture.
#[derive(Clone, Debug)]
pub struct CaptureOptions {
    /// How many times to repeat the run for the timing statistics.
    pub repeats: u32,
    /// Sweep every loop-optimizer variant instead of SDPPO only.
    pub full: bool,
    /// Perturbation spec applied to the finished profile (the test
    /// hook; see [`PERTURB_ENV`]).
    pub perturb: Option<String>,
}

impl Default for CaptureOptions {
    fn default() -> Self {
        CaptureOptions {
            repeats: 3,
            full: false,
            perturb: None,
        }
    }
}

/// Timing series accumulated across repeats, keyed by stat name.
struct TimingSeries {
    names: Vec<&'static str>,
    samples: Vec<Vec<u64>>,
}

impl TimingSeries {
    fn new(names: Vec<&'static str>) -> TimingSeries {
        let samples = names.iter().map(|_| Vec::new()).collect();
        TimingSeries { names, samples }
    }

    fn push(&mut self, name: &str, sample_ns: u64) {
        let slot = self
            .names
            .iter()
            .position(|n| *n == name)
            .expect("known stat");
        self.samples[slot].push(sample_ns);
    }

    fn finish(self) -> Vec<(String, TimingStat)> {
        let mut out: Vec<(String, TimingStat)> = self
            .names
            .iter()
            .zip(&self.samples)
            .map(|(name, samples)| (name.to_string(), TimingStat::from_samples_ns(samples)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

fn winner_of(synthesis: &Synthesis) -> String {
    let w = &synthesis.report.candidates[synthesis.report.winner];
    format!(
        "{}/{}/{}",
        w.heuristic.as_str(),
        w.loop_opt.as_str(),
        w.allocation_order.as_str()
    )
}

/// Captures a regression-sentinel profile for `graph`.
///
/// # Errors
///
/// Returns a readable message when the engine fails on the graph or the
/// work counters differ between repeats (a nondeterministic pipeline
/// must not become a baseline).
pub fn capture_profile(graph: &SdfGraph, options: &CaptureOptions) -> Result<Profile, String> {
    let repeats = options.repeats.max(1);
    let mut timings = TimingSeries::new(vec![
        "engine.total",
        "engine.repetitions",
        "stage.schedule",
        "stage.lifetime",
        "stage.wig",
        "stage.alloc",
    ]);
    let mut counters: Option<Vec<(String, u64)>> = None;
    let mut outcomes = Outcomes::default();
    for repeat in 0..repeats {
        let mut builder = AnalysisBuilder::new().parallel(false);
        if options.full {
            builder = builder.loop_opts(LoopVariant::ALL);
        }
        let recorder = Arc::new(Recorder::new());
        // The capture covers the full product, not just the analysis:
        // the winner is lowered to its `ExecutablePlan` and executed by
        // the interpreter oracle inside the same recorder scope, so the
        // `codegen.*` / `exec.*` counters join the baseline and every
        // baseline graph is re-proven safe on each capture.
        let synthesis = sdf_trace::scoped(&recorder, || -> Result<_, String> {
            let synthesis = builder
                .run_full(graph)
                .map_err(|e| format!("engine failed on {}: {e}", graph.name()))?;
            let plan = synthesis
                .plan(graph)
                .map_err(|e| format!("plan lowering failed on {}: {e}", graph.name()))?;
            sdf_codegen::execute_plan(&plan)
                .map_err(|e| format!("plan execution failed on {}: {e}", graph.name()))?;
            Ok(synthesis)
        })?;
        let report = &synthesis.report;
        let run_counters = recorder.counters();
        timings.push("engine.total", report.total_ns);
        timings.push("engine.repetitions", report.repetitions_ns);
        let mut stages = [0u64; 4];
        for c in &report.candidates {
            stages[0] += c.timings.schedule_ns;
            stages[1] += c.timings.lifetime_ns;
            stages[2] += c.timings.wig_ns;
            stages[3] += c.timings.alloc_ns;
        }
        timings.push("stage.schedule", stages[0]);
        timings.push("stage.lifetime", stages[1]);
        timings.push("stage.wig", stages[2]);
        timings.push("stage.alloc", stages[3]);
        match &counters {
            None => {
                counters = Some(run_counters);
                let fragmentation = recorder
                    .snapshot()
                    .gauges
                    .iter()
                    .find(|(name, _)| name == "alloc.fragmentation_words")
                    .map(|(_, v)| *v)
                    .unwrap_or(0);
                outcomes = Outcomes {
                    shared_bufmem: synthesis.analysis.shared_total(),
                    nonshared_bufmem: synthesis.analysis.nonshared_bufmem,
                    fragmentation,
                    winner: winner_of(&synthesis),
                    candidates: report.candidates.len() as u64,
                };
            }
            Some(first) => {
                if *first != run_counters {
                    let culprit = first
                        .iter()
                        .zip(&run_counters)
                        .find(|(a, b)| a != b)
                        .map(|(a, _)| a.0.clone())
                        .unwrap_or_else(|| "counter set".to_string());
                    return Err(format!(
                        "{}: counters are not deterministic across repeats \
                         (`{culprit}` differs between repeat 1 and repeat {}); \
                         refusing to record a baseline from a nondeterministic run",
                        graph.name(),
                        repeat + 1
                    ));
                }
            }
        }
    }
    let mut profile = Profile {
        graph: graph.name().to_string(),
        actors: graph.actor_count() as u64,
        edges: graph.edge_count() as u64,
        repeats,
        full: options.full,
        outcomes,
        counters: counters.unwrap_or_default(),
        timings: timings.finish(),
    };
    if let Some(spec) = &options.perturb {
        profile
            .apply_perturbation(spec)
            .map_err(|e| format!("bad {PERTURB_ENV} spec: {e}"))?;
    }
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdf_apps::satrec::satellite_receiver;
    use sdf_regress::{diff, DiffOptions};

    #[test]
    fn capture_is_reproducible_and_diffs_clean() {
        let graph = satellite_receiver();
        let options = CaptureOptions {
            repeats: 2,
            ..CaptureOptions::default()
        };
        let a = capture_profile(&graph, &options).expect("capture a");
        let b = capture_profile(&graph, &options).expect("capture b");
        assert_eq!(a.graph, "satrec");
        assert!(!a.counters.is_empty());
        // The capture runs the plan oracle too, so the lowering and
        // execution counters are part of the baseline.
        for required in ["codegen.plan.ops", "exec.firings", "exec.peak_live_bytes"] {
            assert!(
                a.counters.iter().any(|(n, v)| n == required && *v > 0),
                "missing counter {required}: {:?}",
                a.counters
            );
        }
        assert!(a.outcomes.shared_bufmem > 0);
        assert!(a.outcomes.shared_bufmem <= a.outcomes.nonshared_bufmem);
        assert!(a.outcomes.winner.contains('/'), "{}", a.outcomes.winner);
        assert!(a.timings.iter().any(|(n, _)| n == "engine.total"));
        let report = diff(&a, &b, &DiffOptions::default());
        assert!(report.is_clean(), "{}", report.to_text());
    }

    #[test]
    fn perturbed_capture_trips_the_gate() {
        let graph = satellite_receiver();
        let baseline = capture_profile(&graph, &CaptureOptions::default()).expect("baseline");
        let perturbed = capture_profile(
            &graph,
            &CaptureOptions {
                perturb: Some("sched.dppo.cells=+100".to_string()),
                ..CaptureOptions::default()
            },
        )
        .expect("perturbed");
        let report = diff(&baseline, &perturbed, &DiffOptions::default());
        assert_eq!(report.gate_failures(), 1);
        assert!(report.to_text().contains("sched.dppo.cells"));
    }

    #[test]
    fn full_capture_covers_the_wider_lattice() {
        let graph = satellite_receiver();
        let narrow = capture_profile(&graph, &CaptureOptions::default()).expect("narrow");
        let full = capture_profile(
            &graph,
            &CaptureOptions {
                full: true,
                ..CaptureOptions::default()
            },
        )
        .expect("full");
        assert!(full.outcomes.candidates > narrow.outcomes.candidates);
        // Mixing a full and a narrow capture is flagged, not silently
        // compared.
        let report = diff(&narrow, &full, &DiffOptions::default());
        assert!(!report.is_clean());
        assert!(report.to_text().contains("full"));
    }

    #[test]
    fn bad_perturbation_spec_is_reported() {
        let graph = satellite_receiver();
        let err = capture_profile(
            &graph,
            &CaptureOptions {
                perturb: Some("no-equals-sign".to_string()),
                ..CaptureOptions::default()
            },
        )
        .unwrap_err();
        assert!(err.contains(PERTURB_ENV), "{err}");
    }
}
